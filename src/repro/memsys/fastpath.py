"""Event-free fast-path replay engine.

The desim event engine replays a trace by scheduling two events per
request (a queue wakeup and a service timeout) through a generator-based
process kernel — faithful, observable, and ~50k requests/s.  Every
quantity it produces, however, is *determined* by the trace and the
configuration: service durations follow from per-bank row sequences,
service starts are back-to-back while a queue is busy, arrivals are
pinned to queue-slot releases (or to explicit trace timestamps), and
refresh blackouts are a pure function of the clock.  This module
exploits that determinism to replay traces at millions of requests per
second while producing the same :class:`MemSysStats`.

It is organized as two tiers behind one entry point,
:func:`replay_fast`:

**Tier 1 — vectorized closed form.**  Banks are reduced to plain
``(open_row, ready_at_ns)`` records advanced by array arithmetic:

* per-channel FIFO service order is assumed, row-buffer outcomes are
  computed in one vectorized pass (previous-same-bank row comparison —
  an open-row streak of ``L`` requests costs one activation plus ``L``
  batched page spans, charged by a single ``cumsum``; AB register
  broadcasts never touch a row buffer, so they are charged one page
  access and skipped by the outcome scan), and service finishes follow
  as sequential prefix sums of the durations;
* *line-rate* arrivals follow from the bounded queue: the ``m``-th
  request of a channel is admitted exactly when the ``(m - depth)``-th
  service *starts* (that dequeue frees its slot), so ``A[m] =
  S[m - depth]``;
* *timestamped* arrivals are taken from the trace: ``A[m] = T[m]``, and
  service starts solve the Lindley recurrence ``S[j] = max(T[j],
  F[j-1])`` — located with one vectorized running-max scan, then
  recomputed per busy segment with the event engine's exact
  left-to-right float additions (:func:`_segmented_service`);
* *refresh* (per-rank tREFI/tRFC) appears as deterministic ready-time
  fences: the service stream is chunked at refresh boundaries
  (:func:`_chunked_refresh_channel`) — within an epoch starts are
  back-to-back cumsums, each boundary precharges every row buffer (the
  next chunk's outcome scan restarts from all-banks-closed), and a
  start landing inside a blackout is pushed to its end with the same
  float expression the event engine's stall timeout produces.

Exact, conservative, and themselves vectorized *certificates* decide
whether the closed form reproduces the event engine:

1. *FIFO certificate* (FR-FCFS only): at every selection whose head is
   not a row hit, no request in the queue window (the next
   ``queue_depth - 1`` same-channel requests — a superset of the
   engine's visible queue) hits its bank's open row.  When that holds,
   FR-FCFS never reorders and the FIFO outcome arrays are exact.  FCFS
   and pure all-bank channels (PIM row ops and AB register broadcasts
   occupy every bank or act as scheduling barriers, so the controller
   serves them strictly in order) are FIFO by construction.  With
   refresh, the certificate runs per epoch
   chunk (row buffers restart closed) with a ``depth - 1`` lookahead
   into the next chunk.
2. *Line-rate certificate* (untimestamped traces): the arrival
   candidates ``A[m] = S[m - depth]`` must be non-decreasing in trace
   order.  Then the injector never stalls one channel on another's
   full queue and the closed-form times solve the engine's recurrences
   exactly.  When it *fails* on a FIFO-certified trace (e.g. random
   traffic under FCFS — the channel imbalance starves queues), the
   arrivals are instead solved to a fixed point of the coupled
   injector/service recurrences (:func:`_arrival_fixed_point`), which
   converges to the event engine's exact values or falls back.
3. *Backpressure certificate* (timestamped traces): every arrival must
   find a free queue slot, ``T[j] >= S[j - depth]`` per channel; then
   arrivals equal the trace timestamps exactly.

Streaming, strided, and all-bank (PIM and AB) traces pass the
certificates with or without refresh; timestamped traces pass whenever
their arrival rate keeps queues from overflowing; FCFS random traffic
is certified through the arrival fixed point.  Refresh at per-bank
granularity, refresh combined with timestamps, and channels that mix
host requests with all-bank commands always take tier 2.

**Tier 2 — exact incremental replay.**  Traces that fail a certificate
(e.g. random traffic under FR-FCFS, whose stray row hits let the
scheduler reorder) fall back to a lean discrete replay that reproduces
the event engine's ``(time, priority, insertion)`` scheduling order
with plain tuples on a heap — no Event objects, no generators, no
process bookkeeping — driving the *same* controller bookkeeping
(:meth:`ChannelController._admit` / ``_service_delay`` /
``_begin_service`` / ``_finish_service``) and the same Bank state
machines, so its statistics are bit-identical to the event engine's by
construction.  Trace timestamps become absolute-time injector
resumptions; refresh stalls become retry occurrences at the blackout
end, gated by the same shared ``_service_delay`` arithmetic.

Differences from the event engine (both tiers):

* no per-event trace records are emitted (``engine="auto"`` therefore
  only picks the fast path when no tracer is attached);
* ``MemRequest.done`` completion events are not created;
* per-request runtime fields (coords, timestamps, outcome, bits) are
  written back for object traces but not for
  :class:`~repro.memsys.trace.PackedTrace` inputs, which never
  materialize request objects at all;
* queue-occupancy extremes (``queue_len.minimum`` / ``maximum``, not
  part of :class:`MemSysStats`) are exact under the line-rate
  certificate; in the gapped tiers (timestamped / fixed-point
  arrivals) same-instant interleavings of an admission with an
  *earlier* request's dequeue are resolved admission-first and
  clipped at the queue depth, which can differ from the event
  calendar by one transient slot.
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
import math
import typing as _t

import numpy as np

from .addrmap import Coordinates
from .bank import CLOSED, OUTCOMES, PER_RANK, latency_table
from .controller import FRFCFS
from .request import MemRequest, OPS_BY_CODE, Op
from .trace import PackedTrace

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..telemetry import ReplayTelemetry
    from .bank import RefreshSchedule
    from .system import MemorySystem, MemSysStats

__all__ = ["replay_fast"]


def _null_phase(name: str) -> _t.ContextManager[None]:
    return contextlib.nullcontext()

#: Outcome codes, aligned with :data:`repro.memsys.bank.OUTCOMES`; the
#: AB register broadcast never touches a row buffer, so the bank module
#: doesn't know it — its code 3 aligns with the telemetry layer's
#: :data:`repro.telemetry.OUTCOME_NAMES` instead.
_HIT, _MISS, _CONFLICT, _BROADCAST = 0, 1, 2, 3
#: Outcome vocabulary for per-request write-back (code -> name).
_OUTCOME_NAMES = OUTCOMES + ("broadcast",)
_PIM_CODE = Op.PIM.code
_AB_CODE = Op.AB.code

#: Tier-2 scheduling vocabulary, mirroring the desim heap discipline.
_URGENT, _NORMAL = 0, 1
_COMPLETE, _INJECT, _WAKEUP, _RETRY = 0, 1, 2, 3

#: Iteration cap for the arrival fixed point (each iteration is one
#: vectorized pass; stalled-arrival chains longer than this are rare
#: enough to leave to the exact tier).
_MAX_ARRIVAL_ITERS = 64


def replay_fast(
    system: "MemorySystem",
    trace: _t.Union[_t.Sequence[MemRequest], PackedTrace],
    telemetry: _t.Optional["ReplayTelemetry"] = None,
    *,
    force_exact: bool = False,
) -> "MemSysStats":
    """Replay ``trace`` through ``system`` without scheduling events.

    Called by :meth:`MemorySystem.replay` with ``engine="fast"`` (or
    ``"auto"``); picks the vectorized closed form when its certificates
    hold and the exact incremental replay otherwise.  Populates the
    system's controllers and banks with the same counters the event
    engine would leave behind, advances the simulator clock to the
    replay makespan, and reduces statistics through the shared
    :meth:`MemorySystem.gather_stats`.

    With ``telemetry`` attached, its profiler times the four phases
    (``decode`` / ``certificate`` / ``tier-execute`` /
    ``stats-gather``) and its latency recorder adopts the per-request
    times — by reference (the vectorized plan arrays, or the exact
    tier's request list), so capture costs nothing while the clock is
    running and never perturbs the replay arithmetic.

    ``force_exact=True`` pins tier 2 without evaluating the vectorized
    certificates.  The replay-farm workers use this to reproduce the
    tier a single-process replay of the *whole* trace would pick: the
    two tiers accumulate :class:`~repro.desim.stats.Tally` state
    through different (each internally exact) float reductions, so a
    shard replayed on a different tier than its channel saw in the
    full replay can drift by one ulp — pinning the tier restores
    bit-identity.
    """
    recorder = telemetry.recorder if telemetry is not None else None
    phase = (
        telemetry.profiler.phase
        if telemetry is not None and telemetry.profiler is not None
        else _null_phase
    )
    with phase("decode"):
        if isinstance(trace, PackedTrace):
            requests: _t.Optional[_t.List[MemRequest]] = None
            op_codes = trace.op_codes.astype(np.int64)
            addrs = trace.addrs
            times = trace.times
        else:
            requests = list(trace)
            n = len(requests)
            op_codes = np.fromiter(
                (r.op.code for r in requests), dtype=np.int64, count=n
            )
            addrs = np.fromiter(
                (r.addr for r in requests), dtype=np.int64, count=n
            )
            # uniform presence was validated by MemorySystem.replay
            if requests and requests[0].timestamp is not None:
                times = np.fromiter(
                    (r.timestamp for r in requests),
                    dtype=np.float64,
                    count=n,
                )
            else:
                times = None
        fields = system.addr_map.decode_fields(addrs)
        config = system.config
        n_banks = config.banks_per_channel
        flat_bank = (
            fields["bankgroup"] * config.banks_per_group + fields["bank"]
        ) % n_banks

    with phase("certificate"):
        if force_exact:
            plan = None
        else:
            plan = _vector_plan(
                system,
                op_codes,
                fields["channel"],
                flat_bank,
                fields["row"],
                times,
            )
    if plan is not None:
        with phase("tier-execute"):
            makespan = _commit_vector_plan(system, plan)
            system.last_replay_engine = "fast-vectorized"
            if requests is not None:
                _write_back(requests, fields, plan)
        if recorder is not None:
            recorder._capture_plan(
                op_codes, fields["channel"], fields["row"],
                flat_bank, plan,
            )
    else:
        with phase("tier-execute"):
            if requests is None:
                time_list: _t.Iterable[_t.Optional[float]] = (
                    times.tolist()
                    if times is not None
                    else itertools.repeat(None)
                )
                requests = [
                    MemRequest(OPS_BY_CODE[code], addr, when)
                    for code, addr, when in zip(
                        op_codes.tolist(), addrs.tolist(), time_list
                    )
                ]
            _assign_coords(requests, fields)
            makespan = _replay_exact(system, requests, fields["channel"])
            system.last_replay_engine = "fast-exact"
        if recorder is not None:
            recorder._capture_requests(requests)
    system.sim._now = makespan
    with phase("stats-gather"):
        return system.gather_stats()


# ----------------------------------------------------------------------
# Tier 1: vectorized closed form
# ----------------------------------------------------------------------
def _vector_plan(
    system: "MemorySystem",
    op_codes: np.ndarray,
    channel: np.ndarray,
    flat_bank: np.ndarray,
    row: np.ndarray,
    times: _t.Optional[np.ndarray],
) -> _t.Optional[_t.List[_t.Optional[dict]]]:
    """Try to solve the whole replay in closed form.

    Returns one record per channel (``None`` entries for idle channels)
    with FIFO outcome codes and the ``A``/``S``/``F`` time arrays, or
    ``None`` when a certificate fails and the exact tier must run.
    """
    config = system.config
    depth = config.queue_depth
    refresh = config.refresh_schedule()
    if refresh is not None and (
        refresh.granularity != PER_RANK or times is not None
    ):
        # per-bank blackouts depend on the selected request, and fences
        # interleaved with trace arrivals break the segmented solvers:
        # both are served exactly by tier 2
        return None
    n = op_codes.shape[0]
    table = latency_table(config.timing, config.precharge_ns)
    # index _BROADCAST charges the AB register broadcast: one column
    # access on the command/data bus — the same page_access_ns the
    # controller's _serve returns (== the row-hit latency)
    latencies = np.array(
        [table[name] for name in OUTCOMES] + [table[OUTCOMES[_HIT]]]
    )
    n_banks = config.banks_per_channel
    page_bits = config.timing.page_bits
    closed = config.row_policy == CLOSED
    frfcfs = config.policy == FRFCFS
    plan: _t.List[_t.Optional[dict]] = []
    for ch in range(config.n_channels):
        idx = np.nonzero(channel == ch)[0]
        n_c = int(idx.shape[0])
        if n_c == 0:
            plan.append(None)
            continue
        bank_c = flat_bank[idx]
        row_c = row[idx]
        codes_c = op_codes[idx]
        pim = codes_c == _PIM_CODE
        ab = codes_c == _AB_CODE
        any_pim = bool(pim.any())
        any_ab = bool(ab.any())
        if (any_pim or any_ab) and not bool((pim | ab).all()):
            # host requests interleaved with all-bank commands: the
            # FR-FCFS hoist and the AB barrier interact per selection —
            # exact tier only
            return None
        # ab_c is None for host-only channels; for all-bank channels it
        # marks the AB broadcasts within the PIM/AB lockstep stream
        ab_c = ab if (any_pim or any_ab) else None
        if ab_c is None:
            bits: _t.Union[int, np.ndarray] = page_bits
        elif not any_ab:
            bits = page_bits * n_banks  # pure PIM: all banks move pages
        elif not any_pim:
            bits = page_bits  # pure AB: one command page per broadcast
        else:
            bits = np.where(ab, page_bits, page_bits * n_banks)
        check_fifo = (
            frfcfs and depth > 1 and ab_c is None and not closed
        )
        data: dict = {"idx": idx, "bits": bits}
        if refresh is not None:
            chunked = _chunked_refresh_channel(
                refresh,
                bank_c,
                row_c,
                ab_c,
                closed,
                latencies,
                depth,
                n_banks,
                check_fifo,
            )
            if chunked is None:
                return None
            data.update(chunked)
            data["segments"] = None  # line-rate: the channel never idles
        else:
            outcome, bank_counts, open_final = _chunk_outcomes(
                bank_c, row_c, ab_c, closed, n_banks
            )
            if check_fifo and not _fifo_certificate(
                bank_c, row_c, outcome, depth, n_banks
            ):
                return None
            durations = latencies[outcome]
            data.update(
                outcome=outcome,
                bank_counts=bank_counts,
                open_final=open_final,
                durations=durations,
            )
            if times is not None:
                t_c = times[idx]
                solved = _segmented_service(t_c, durations)
                if solved is None:
                    return None
                start, finish, segments = solved
                if n_c > depth and bool(
                    np.any(t_c[depth:] < start[: n_c - depth])
                ):
                    # backpressure certificate: an arrival would find
                    # its queue full — the injector would stall
                    return None
                data.update(
                    arrival=t_c,
                    start=start,
                    finish=finish,
                    segments=segments,
                )
            else:
                finish = _seq_cumsum(0.0, durations)
                start = np.empty(n_c)
                start[0] = 0.0
                start[1:] = finish[:-1]
                data.update(start=start, finish=finish, segments=None)
        plan.append(data)

    if times is not None:
        return plan

    # Line-rate arrivals: A[m] = S[m - depth] per channel, valid when
    # the candidates are non-decreasing in trace order (the injector
    # never stalls one channel behind another's full queue).
    arrivals_global = np.zeros(n)
    for data in plan:
        if data is None:
            continue
        idx = data["idx"]
        start = data["start"]
        n_c = idx.shape[0]
        arrival = np.zeros(n_c)
        if n_c > depth:
            arrival[depth:] = start[: n_c - depth]
        data["arrival"] = arrival
        arrivals_global[idx] = arrival
    if n <= 1 or not bool(np.any(np.diff(arrivals_global) < 0)):
        return plan
    if refresh is not None:
        # fences inside the coupled arrival recurrence: exact tier
        return None
    # The line-rate certificate failed on a FIFO-certified trace (FCFS,
    # or FR-FCFS that passed the FIFO certificate): solve the coupled
    # injector/service recurrences to their fixed point instead.
    busy = [
        (data["idx"], data["durations"])
        for data in plan
        if data is not None
    ]
    fixed = _arrival_fixed_point(n, busy, depth)
    if fixed is None:
        return None
    arrivals, solved = fixed
    cursor = 0
    for data in plan:
        if data is None:
            continue
        start, finish, segments = solved[cursor]
        cursor += 1
        data.update(
            arrival=arrivals[data["idx"]],
            start=start,
            finish=finish,
            segments=segments,
        )
    return plan


def _chunk_outcomes(
    bank_c: np.ndarray,
    row_c: np.ndarray,
    ab_c: _t.Optional[np.ndarray],
    closed: bool,
    n_banks: int,
) -> _t.Tuple[np.ndarray, np.ndarray, _t.List[_t.Optional[int]]]:
    """FIFO row-buffer outcomes for one all-banks-closed stream.

    Returns ``(outcome codes, per-bank outcome counts, final open
    rows)`` for a request slice served in order starting from closed
    row buffers — a whole channel without refresh, or one refresh epoch
    chunk (each boundary precharges every bank, so every chunk restarts
    from the same state).  ``ab_c`` is ``None`` for a host-only stream;
    for an all-bank stream it marks the AB register broadcasts, which
    are charged code :data:`_BROADCAST`, never touch a row buffer, and
    therefore pass through the PIM row scan without disturbing it.
    """
    n_c = bank_c.shape[0]
    if closed:
        # Auto-precharge: every row access activates a fresh row — all
        # misses, never a hit or conflict, so FR-FCFS has nothing to
        # hoist (FIFO by construction) and all banks end closed.  AB
        # broadcasts bypass the row buffers under any policy.
        outcome = np.full(n_c, _MISS, dtype=np.int64)
        bank_counts = np.zeros((n_banks, 3), dtype=np.int64)
        if ab_c is not None:
            outcome[ab_c] = _BROADCAST
            bank_counts[:, _MISS] = int(n_c - int(ab_c.sum()))
        else:
            bank_counts[:, _MISS] = np.bincount(
                bank_c, minlength=n_banks
            )
        return outcome, bank_counts, [None] * n_banks
    if ab_c is not None:
        # All-bank lockstep: every bank holds the previous PIM row, so
        # outcomes are uniform across banks and follow from the PIM row
        # subsequence alone; AB broadcasts never open or close a row.
        outcome = np.full(n_c, _BROADCAST, dtype=np.int64)
        pim_rows = row_c[~ab_c]
        m = pim_rows.shape[0]
        pim_out = np.empty(m, dtype=np.int64)
        if m:
            pim_out[0] = _MISS
            pim_out[1:] = np.where(
                pim_rows[1:] == pim_rows[:-1], _HIT, _CONFLICT
            )
        outcome[~ab_c] = pim_out
        bank_counts = np.tile(
            np.bincount(pim_out, minlength=3), (n_banks, 1)
        )
        open_final = (
            [int(pim_rows[-1])] * n_banks if m else [None] * n_banks
        )
        return outcome, bank_counts, open_final
    # FIFO row-buffer outcomes: compare each request's row with the
    # previous request on the same bank (stable sort groups banks while
    # preserving service order within each).
    order = np.argsort(bank_c, kind="stable")
    sorted_bank = bank_c[order]
    sorted_row = row_c[order]
    prev_sorted = np.full(n_c, -1, dtype=np.int64)
    if n_c > 1:
        same = sorted_bank[1:] == sorted_bank[:-1]
        prev_sorted[1:][same] = sorted_row[:-1][same]
    prev_row = np.empty(n_c, dtype=np.int64)
    prev_row[order] = prev_sorted
    outcome = np.where(
        row_c == prev_row,
        _HIT,
        np.where(prev_row < 0, _MISS, _CONFLICT),
    )
    bank_counts = np.bincount(
        bank_c * 3 + outcome, minlength=3 * n_banks
    ).reshape(n_banks, 3)
    open_final: _t.List[_t.Optional[int]] = [None] * n_banks
    group_ends = np.nonzero(
        np.r_[sorted_bank[1:] != sorted_bank[:-1], True]
    )[0]
    for end in group_ends.tolist():
        open_final[int(sorted_bank[end])] = int(sorted_row[end])
    return outcome, bank_counts, open_final


def _chunked_refresh_channel(
    refresh: "RefreshSchedule",
    bank_c: np.ndarray,
    row_c: np.ndarray,
    ab_c: _t.Optional[np.ndarray],
    closed: bool,
    latencies: np.ndarray,
    depth: int,
    n_banks: int,
    check_fifo: bool,
) -> _t.Optional[dict]:
    """Line-rate service times under per-rank refresh, epoch by epoch.

    Each refresh boundary precharges every row buffer, so the outcome
    scan restarts from all-banks-closed at every chunk; a service start
    landing inside the blackout ``[k*tREFI, k*tREFI + tRFC)`` is pushed
    to its end with the event engine's own stall arithmetic
    (``now + (fence - now)``).  The FIFO certificate runs once over the
    whole channel on the refresh-aware outcomes, with chunk labels
    cancelling open rows across boundaries (queue windows still cross
    them).  Returns ``None`` when the FIFO certificate fails.
    """
    n_c = bank_c.shape[0]
    trefi = refresh.trefi_ns
    # at most trefi/min-duration services can *start* within one epoch
    # (back-to-back starts are at least one service apart), bounding
    # the outcome-scan window so the chunk loop stays O(n) overall
    limit = int(trefi / float(latencies.min())) + 2
    outcome = np.empty(n_c, dtype=np.int64)
    start = np.empty(n_c)
    finish = np.empty(n_c)
    chunk_id = np.empty(n_c, dtype=np.int64)
    bank_counts = np.zeros((n_banks, 3), dtype=np.int64)
    open_final: _t.List[_t.Optional[int]] = [None] * n_banks
    i = 0
    chunk = 0
    epoch_applied = 0
    t = 0.0  # finish time of the previous service
    while i < n_c:
        s = t if i else 0.0
        epoch = int(math.floor(s / trefi))
        if epoch > epoch_applied:
            epoch_applied = epoch  # the boundary closes every bank
            fence = refresh.rank_fence(s)
            if fence > s:
                s = s + (fence - s)  # the engine's stall timeout
        window = min(n_c - i, limit)
        out_w, _counts_w, _open_w = _chunk_outcomes(
            bank_c[i : i + window],
            row_c[i : i + window],
            None if ab_c is None else ab_c[i : i + window],
            closed,
            n_banks,
        )
        f_w = _seq_cumsum(s, latencies[out_w])
        s_w = np.empty(window)
        s_w[0] = s
        s_w[1:] = f_w[:-1]
        crossed = np.floor(s_w / trefi) > epoch_applied
        if bool(crossed.any()):
            k = int(np.argmax(crossed))
        elif window < n_c - i:  # pragma: no cover - defensive
            # the window bound guarantees a boundary crossing before it
            # runs out; bail to the exact tier rather than continue a
            # chunk on stale bank state if float edges ever break that
            return None
        else:
            k = window
        if k == 0:  # pragma: no cover - defensive (float edge)
            return None
        # outcomes are prefix-stable (request j's code only looks at
        # earlier requests of the same chunk), so re-scanning just the
        # committed prefix yields exactly ``out_w[:k]`` plus the
        # chunk's bank counts and final open rows; each boundary
        # precharges every bank, so ``open_final`` is replaced, not
        # merged
        out_k, counts_k, open_final = _chunk_outcomes(
            bank_c[i : i + k],
            row_c[i : i + k],
            None if ab_c is None else ab_c[i : i + k],
            closed,
            n_banks,
        )
        bank_counts += counts_k
        outcome[i : i + k] = out_k
        start[i : i + k] = s_w[:k]
        finish[i : i + k] = f_w[:k]
        chunk_id[i : i + k] = chunk
        chunk += 1
        t = float(f_w[k - 1])
        i += k
    if check_fifo and not _fifo_certificate(
        bank_c, row_c, outcome, depth, n_banks, chunk_id=chunk_id
    ):
        return None
    return {
        "outcome": outcome,
        "start": start,
        "finish": finish,
        "bank_counts": bank_counts,
        "open_final": open_final,
    }


def _seq_cumsum(s: float, durations: np.ndarray) -> np.ndarray:
    """Prefix sums of ``durations`` starting from ``s``.

    Computed as one ``cumsum`` over ``[s, d0, d1, ...]``, which
    performs exactly the left-to-right float additions the event
    engine's ``now + latency`` clock does — the core of the fast
    path's bit-exactness.
    """
    buffer = np.empty(durations.shape[0] + 1)
    buffer[0] = s
    buffer[1:] = durations
    return np.cumsum(buffer)[1:]


def _segmented_service(
    earliest: np.ndarray, durations: np.ndarray
) -> _t.Optional[_t.Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Solve ``S[j] = max(E[j], F[j-1])``, ``F = S + d`` exactly.

    ``earliest`` is the per-request lower bound on service start (trace
    timestamps, or injector admission times).  Busy segments are
    located with one vectorized Lindley running-max scan (closed-form,
    but float-associated differently than the engine), then finish
    times are *recomputed* per segment with the engine's sequential
    additions (:func:`_seq_cumsum`) and the segmentation is verified
    against the exact values.  Returns ``(start, finish,
    segment-start indices)``, or ``None`` if an ulp-level misordering
    in the approximate scan produced an inconsistent segmentation (the
    caller falls back to the exact tier).
    """
    n = durations.shape[0]
    prefix = np.empty(n)
    prefix[0] = 0.0
    if n > 1:
        np.cumsum(durations[:-1], out=prefix[1:])
    approx_start = prefix + np.maximum.accumulate(earliest - prefix)
    seg_mask = np.empty(n, dtype=bool)
    seg_mask[0] = True
    if n > 1:
        seg_mask[1:] = earliest[1:] > approx_start[:-1] + durations[:-1]
    seg_idx = np.nonzero(seg_mask)[0]
    start = np.empty(n)
    finish = np.empty(n)
    if seg_idx.shape[0] == n:
        # every request finds the channel idle (sparse arrivals): one
        # elementwise pass, the same single addition the engine does
        start[:] = earliest
        np.add(earliest, durations, out=finish)
    else:
        bounds = np.r_[seg_idx, n].tolist()
        for a, b in zip(bounds[:-1], bounds[1:]):
            f = _seq_cumsum(float(earliest[a]), durations[a:b])
            finish[a:b] = f
            start[a] = earliest[a]
            start[a + 1 : b] = f[:-1]
    if n > 1:
        # a segment start must find the channel idle (E >= previous
        # exact finish); a continuation must not (E <= it) — ties are
        # value-identical either way, so only real misorderings fail
        consistent = np.where(
            seg_mask[1:],
            earliest[1:] >= finish[:-1],
            earliest[1:] <= finish[:-1],
        )
        if not bool(consistent.all()):
            return None
    return start, finish, seg_idx


def _arrival_fixed_point(
    n: int,
    channels: _t.Sequence[_t.Tuple[np.ndarray, np.ndarray]],
    depth: int,
) -> _t.Optional[
    _t.Tuple[
        np.ndarray,
        _t.List[_t.Tuple[np.ndarray, np.ndarray, np.ndarray]],
    ]
]:
    """Solve the coupled injector/service recurrences by iteration.

    Line-rate injection with bounded queues couples the channels: the
    injector admits request ``m`` at ``A[m] = max(A[m-1], R[m])``
    (``R[m]`` = the service start that frees its channel's queue slot),
    while each channel serves FIFO at ``S[j] = max(A[j], F[j-1])``.
    Both maps are monotone, so Kleene iteration from ``A = 0`` —
    alternating exact per-channel service solves with the global
    running-max admission scan — converges to the least fixed point,
    which is exactly the event engine's trajectory (the values
    propagate through ``max`` unchanged and the busy-segment sums use
    the engine's own addition order).  Returns ``(arrivals, [(start,
    finish, segments), ...])`` aligned with ``channels``, or ``None``
    after :data:`_MAX_ARRIVAL_ITERS` without convergence.
    """
    arrivals = np.zeros(n)
    for _ in range(_MAX_ARRIVAL_ITERS):
        releases = np.zeros(n)
        solved = []
        for idx, durations in channels:
            result = _segmented_service(arrivals[idx], durations)
            if result is None:
                return None
            solved.append(result)
            n_c = idx.shape[0]
            if n_c > depth:
                releases[idx[depth:]] = result[0][: n_c - depth]
        updated = np.maximum.accumulate(releases)
        if np.array_equal(updated, arrivals):
            return arrivals, solved
        arrivals = updated
    return None


def _fifo_certificate(
    bank_c: np.ndarray,
    row_c: np.ndarray,
    outcome: np.ndarray,
    depth: int,
    n_banks: int,
    chunk_id: _t.Optional[np.ndarray] = None,
) -> bool:
    """Would FR-FCFS ever reorder this channel's FIFO stream?

    At a selection whose queue head *is* a row hit, FR-FCFS picks the
    oldest hit — the head itself.  So reordering can only start at a
    selection with a non-hit head and some younger queued request
    hitting its bank's open row.  The queue visible at the selection of
    request ``k`` is at most requests ``k+1 .. k+depth-1`` of the same
    channel (exactly those under line-rate injection — the
    ``k+depth``-th slot is released by this very dequeue and its
    admission is processed after the selection; a subset under
    timestamped or stalled arrivals, so the check stays conservative),
    making the check below exact-or-conservative while states still
    follow FIFO — and the first would-be deviation is necessarily
    detected.

    With refresh enabled, ``chunk_id`` labels each request's epoch
    chunk and ``outcome`` holds the refresh-aware (per-chunk) codes: a
    previous same-bank access in an *earlier* chunk left nothing open
    (the boundary precharged the bank), so it contributes no open row —
    while the queue window still crosses chunk boundaries, because
    requests of the next epoch are already queued at an in-chunk
    selection.
    """
    heads = np.nonzero(outcome != _HIT)[0]
    if heads.size == 0:
        return True
    n_c = bank_c.shape[0]
    # open_at_head[i, b]: row open in bank b just before serving
    # heads[i] — evaluated only at the (sparse) non-hit selections, via
    # a binary search into each bank's occurrence list.
    open_at_head = np.full((heads.shape[0], n_banks), -1, dtype=np.int64)
    for b in range(n_banks):
        occurrences = np.nonzero(bank_c == b)[0]
        if occurrences.size == 0:
            continue
        before = np.searchsorted(occurrences, heads)  # strictly before
        has_prior = before > 0
        prior = occurrences[before[has_prior] - 1]
        rows = row_c[prior]
        if chunk_id is not None:
            rows = np.where(
                chunk_id[prior] == chunk_id[heads[has_prior]],
                rows,
                -1,
            )
        open_at_head[has_prior, b] = rows
    for offset in range(1, depth):
        queued = heads + offset
        in_range = queued < n_c
        if not bool(in_range.any()):
            break
        at = np.nonzero(in_range)[0]
        queued = queued[in_range]
        if bool(
            np.any(row_c[queued] == open_at_head[at, bank_c[queued]])
        ):
            return False
    return True


def _commit_vector_plan(
    system: "MemorySystem", plan: _t.List[_t.Optional[dict]]
) -> float:
    """Write the closed-form results into the system's collectors.

    Fills each controller's tally/counter/time-weighted collectors and
    each bank's outcome counters with the values the event engine would
    have accumulated, so :meth:`MemorySystem.gather_stats` (and any
    post-replay introspection of banks or controllers) sees the same
    state.  Returns the replay makespan.
    """
    makespan = 0.0
    for controller, data in zip(system.controllers, plan):
        if data is None:
            # the engine's idle controller: one zero-width transition
            controller.utilization.transition("idle", 0.0)
            continue
        arrival = data["arrival"]
        start = data["start"]
        finish = data["finish"]
        segments = data["segments"]
        n_c = arrival.shape[0]
        latency = finish - arrival
        tally = controller.latency
        mean = latency.mean()
        tally._n = n_c
        tally._sum = float(latency.sum())
        tally._mean = float(mean)
        tally._m2 = float(np.square(latency - mean).sum())
        tally._min = float(latency.min())
        tally._max = float(latency.max())
        controller.completed._count = n_c
        bits = data["bits"]
        controller.bits_delivered._count = (
            int(bits.sum())
            if isinstance(bits, np.ndarray)
            else int(bits) * n_c
        )
        queue = controller.queue_len
        queue._integral = float((start - arrival).sum())
        queue._value = 0.0
        queue._last = float(start[-1])
        queue._min = 0.0
        busy_until = float(finish[-1])
        utilization = controller.utilization
        if segments is None:
            # line-rate: the queue never runs dry, so the channel is
            # busy end to end and every dequeue's freed slot is
            # refilled at the same instant — the peak occupancy is the
            # full queue (or the whole trace, when it fits in one fill)
            queue._max = float(min(n_c, system.config.queue_depth))
            utilization._totals = {"idle": 0.0, "busy": busy_until}
        else:
            # gapped arrivals: occupancy after the j-th admission,
            # counting earlier dequeues at the same instant as still
            # pending (the admission-first calendar order), clipped at
            # the queue depth a full queue cannot exceed
            occupancy = np.arange(1, n_c + 1) - np.searchsorted(
                start, arrival, side="left"
            )
            queue._max = float(
                min(int(occupancy.max()), system.config.queue_depth)
            )
            seg_end = np.r_[segments[1:] - 1, n_c - 1]
            busy_total = float(
                (finish[seg_end] - start[segments]).sum()
            )
            utilization._totals = {
                "idle": busy_until - busy_total,
                "busy": busy_total,
            }
        utilization._state = "idle"
        utilization._since = busy_until
        for bank, counts, open_row in zip(
            controller.banks, data["bank_counts"], data["open_final"]
        ):
            bank.hits = int(counts[_HIT])
            bank.misses = int(counts[_MISS])
            bank.conflicts = int(counts[_CONFLICT])
            bank.open_row = open_row
        makespan = max(makespan, busy_until)
    return makespan


def _write_back(
    requests: _t.List[MemRequest],
    fields: _t.Dict[str, np.ndarray],
    plan: _t.List[_t.Optional[dict]],
) -> None:
    """Fill per-request runtime fields from the closed-form arrays."""
    n = len(requests)
    arrival = np.empty(n)
    start = np.empty(n)
    finish = np.empty(n)
    outcome = np.empty(n, dtype=np.int64)
    bits = np.empty(n, dtype=np.int64)
    for data in plan:
        if data is None:
            continue
        idx = data["idx"]
        arrival[idx] = data["arrival"]
        start[idx] = data["start"]
        finish[idx] = data["finish"]
        outcome[idx] = data["outcome"]
        bits[idx] = data["bits"]
    columns = [
        fields["channel"].tolist(),
        fields["bankgroup"].tolist(),
        fields["bank"].tolist(),
        fields["row"].tolist(),
        fields["column"].tolist(),
        arrival.tolist(),
        start.tolist(),
        finish.tolist(),
        outcome.tolist(),
        bits.tolist(),
    ]
    for request, ch, bg, bk, ro, col, arr, st, fin, out, nbits in zip(
        requests, *columns
    ):
        request.coords = Coordinates(ch, bg, bk, ro, col)
        request.arrival = arr
        request.start_service = st
        request.finish = fin
        request.outcome = _OUTCOME_NAMES[out]
        request.bits = nbits


# ----------------------------------------------------------------------
# Tier 2: exact incremental replay
# ----------------------------------------------------------------------
def _assign_coords(
    requests: _t.List[MemRequest], fields: _t.Dict[str, np.ndarray]
) -> None:
    """Vectorized-decode counterpart of per-request ``system.route``."""
    for request, ch, bg, bk, ro, col in zip(
        requests,
        fields["channel"].tolist(),
        fields["bankgroup"].tolist(),
        fields["bank"].tolist(),
        fields["row"].tolist(),
        fields["column"].tolist(),
    ):
        request.coords = Coordinates(ch, bg, bk, ro, col)


def _replay_exact(
    system: "MemorySystem",
    requests: _t.List[MemRequest],
    channel: np.ndarray,
) -> float:
    """Replay with the event engine's exact scheduling order, eventless.

    A heap of plain ``(time, priority, seq, kind, channel, request)``
    tuples reproduces the desim calendar's ``(time, priority,
    insertion-order)`` discipline for the only occurrences that carry
    state: request completions, injector resumptions (a freed queue
    slot, or a trace timestamp coming due), controller wakeups (an
    enqueue into an idle channel), and refresh retries (a selection
    stalled to the end of a blackout window).  All statistics flow
    through the same controller and bank methods the event engine uses
    — including the shared :meth:`ChannelController._service_delay`
    refresh gate — in the same order, with the same timestamps, so the
    resulting stats are bit-identical.  Returns the replay makespan.

    Occurrences are drained in *rounds*: each outer iteration reads the
    heap's earliest timestamp once and pops every candidate ready at
    that instant (completions, the injector resumption they release,
    and the wakeups those admissions trigger all coincide in this
    workload), so the common completion→inject→wakeup cascade costs one
    round instead of three top-of-loop passes.  Pops stay globally
    ordered by ``(time, priority, seq)`` — a round is just the
    same-time prefix of the calendar — so the statistics are unchanged.
    """
    controllers = system.controllers
    depth = system.config.queue_depth
    for controller in controllers:
        # mirror each controller process's startup idle transition
        controller.utilization.transition("idle", 0.0)
    idle = [True] * len(controllers)
    woken = [False] * len(controllers)
    heap: _t.List[tuple] = []
    push = heapq.heappush
    seq = itertools.count()
    channel_of = channel.tolist()
    n = len(requests)
    cursor = 0  # next request the injector will admit
    blocked_on = -1  # channel whose full queue blocks the injector
    now = 0.0

    def attempt_service(ch: int, at: float) -> None:
        """Start the next service on ``ch``, or schedule a refresh
        retry — the mirrored body of the engine's gated service loop."""
        nonlocal blocked_on
        controller = controllers[ch]
        delay = controller._service_delay(at)
        if delay > 0.0:
            push(heap, (at + delay, _NORMAL, next(seq), _RETRY, ch, None))
            return
        served, latency = controller._begin_service(at)
        if blocked_on == ch:
            blocked_on = -1
            push(heap, (at, _NORMAL, next(seq), _INJECT, -1, None))
        push(
            heap,
            (at + latency, _NORMAL, next(seq), _COMPLETE, ch, served),
        )

    push(heap, (0.0, _URGENT, next(seq), _INJECT, -1, None))
    pop = heapq.heappop
    while heap:
        round_time = heap[0][0]
        while heap and heap[0][0] == round_time:
            now, _prio, _seq, kind, ch, request = pop(heap)
            if kind == _COMPLETE:
                controller = controllers[ch]
                controller._finish_service(request, now)
                if controller.pending:
                    attempt_service(ch, now)
                else:
                    controller.utilization.transition("idle", now)
                    idle[ch] = True
                    woken[ch] = False
            elif kind == _INJECT:
                blocked_on = -1
                while cursor < n:
                    pending_request = requests[cursor]
                    when = pending_request.timestamp
                    if when is not None and when > now:
                        # mirror the injector's absolute-time wait
                        push(
                            heap,
                            (when, _NORMAL, next(seq), _INJECT, -1, None),
                        )
                        break
                    target = channel_of[cursor]
                    controller = controllers[target]
                    if len(controller.pending) >= depth:
                        blocked_on = target
                        break
                    controller._admit(pending_request, now)
                    if idle[target] and not woken[target]:
                        woken[target] = True
                        push(
                            heap,
                            (
                                now, _NORMAL, next(seq), _WAKEUP,
                                target, None,
                            ),
                        )
                    cursor += 1
            elif kind == _WAKEUP:
                idle[ch] = False
                woken[ch] = False
                attempt_service(ch, now)
            else:  # _RETRY: a refresh stall expired; re-evaluate
                attempt_service(ch, now)
    return now
