"""Event-free fast-path replay engine.

The desim event engine replays a trace by scheduling two events per
request (a queue wakeup and a service timeout) through a generator-based
process kernel — faithful, observable, and ~50k requests/s.  Every
quantity it produces, however, is *determined* by the trace and the
configuration: service durations follow from per-bank row sequences,
service starts are back-to-back while a queue is busy, and arrivals are
pinned to queue-slot releases by the bounded-queue injector.  This
module exploits that determinism to replay traces at millions of
requests per second while producing the same :class:`MemSysStats`.

It is organized as two tiers behind one entry point,
:func:`replay_fast`:

**Tier 1 — vectorized closed form.**  Banks are reduced to plain
``(open_row, ready_at_ns)`` records advanced by array arithmetic:

* per-channel FIFO service order is assumed, row-buffer outcomes are
  computed in one vectorized pass (previous-same-bank row comparison —
  an open-row streak of ``L`` requests costs one activation plus ``L``
  batched page spans, charged by a single ``cumsum``), and service
  finishes follow as ``F = cumsum(durations)``;
* arrivals follow from the bounded queue: the ``m``-th request of a
  channel is admitted exactly when the ``(m - depth)``-th service
  *starts* (that dequeue frees its slot), so ``A[m] = S[m - depth]``
  and queue latency is an incremental ready-time scan, not a simulated
  clock.

Two *certificates* — exact, conservative, and themselves vectorized —
decide whether the closed form reproduces the event engine:

1. *FIFO certificate* (FR-FCFS only): at every selection whose head is
   not a row hit, no request in the queue window (the next
   ``queue_depth - 1`` same-channel requests — exactly the engine's
   visible queue) hits its bank's open row.  When that holds, FR-FCFS
   never reorders and the FIFO outcome arrays are exact.  FCFS and
   pure-PIM channels (the all-bank scan skips PIM requests) are FIFO by
   construction.
2. *Line-rate certificate*: the arrival candidates ``A[m] = S[m-depth]``
   must be non-decreasing in trace order.  Then the injector never
   stalls one channel on another's full queue, every selection finds a
   non-empty queue, and the closed-form times solve the engine's
   recurrences exactly (bit-for-bit: ``cumsum`` performs the same
   left-to-right float additions the event clock does).

Streaming, strided, and PIM all-bank traces pass both certificates.

**Tier 2 — exact incremental replay.**  Traces that fail a certificate
(e.g. random traffic, whose channel imbalance starves queues and whose
stray row hits let FR-FCFS reorder) fall back to a lean discrete replay
that reproduces the event engine's ``(time, priority, insertion)``
scheduling order with three plain tuple kinds on a heap — no Event
objects, no generators, no process bookkeeping — driving the *same*
controller bookkeeping (:meth:`ChannelController._admit` /
``_begin_service`` / ``_finish_service``) and the same Bank state
machines, so its statistics are bit-identical to the event engine's by
construction, at roughly twice its speed.

Differences from the event engine (both tiers):

* no per-event trace records are emitted (``engine="auto"`` therefore
  only picks the fast path when no tracer is attached);
* ``MemRequest.done`` completion events are not created;
* per-request runtime fields (coords, timestamps, outcome, bits) are
  written back for object traces but not for
  :class:`~repro.memsys.trace.PackedTrace` inputs, which never
  materialize request objects at all.
"""

from __future__ import annotations

import heapq
import itertools
import typing as _t

import numpy as np

from .addrmap import Coordinates
from .bank import CLOSED, OUTCOMES, latency_table
from .controller import FRFCFS
from .request import MemRequest, OPS_BY_CODE, Op
from .trace import PackedTrace

if _t.TYPE_CHECKING:  # pragma: no cover
    from .system import MemorySystem, MemSysStats

__all__ = ["replay_fast"]

#: Outcome codes, aligned with :data:`repro.memsys.bank.OUTCOMES`.
_HIT, _MISS, _CONFLICT = 0, 1, 2
_PIM_CODE = Op.PIM.code
_AB_CODE = Op.AB.code

#: Tier-2 scheduling vocabulary, mirroring the desim heap discipline.
_URGENT, _NORMAL = 0, 1
_COMPLETE, _INJECT, _WAKEUP = 0, 1, 2


def replay_fast(
    system: "MemorySystem",
    trace: _t.Union[_t.Sequence[MemRequest], PackedTrace],
) -> "MemSysStats":
    """Replay ``trace`` through ``system`` without scheduling events.

    Called by :meth:`MemorySystem.replay` with ``engine="fast"`` (or
    ``"auto"``); picks the vectorized closed form when its certificates
    hold and the exact incremental replay otherwise.  Populates the
    system's controllers and banks with the same counters the event
    engine would leave behind, advances the simulator clock to the
    replay makespan, and reduces statistics through the shared
    :meth:`MemorySystem.gather_stats`.
    """
    if isinstance(trace, PackedTrace):
        requests: _t.Optional[_t.List[MemRequest]] = None
        op_codes = trace.op_codes.astype(np.int64)
        addrs = trace.addrs
    else:
        requests = list(trace)
        n = len(requests)
        op_codes = np.fromiter(
            (r.op.code for r in requests), dtype=np.int64, count=n
        )
        addrs = np.fromiter(
            (r.addr for r in requests), dtype=np.int64, count=n
        )
    fields = system.addr_map.decode_fields(addrs)
    config = system.config
    n_banks = config.banks_per_channel
    flat_bank = (
        fields["bankgroup"] * config.banks_per_group + fields["bank"]
    ) % n_banks

    if bool(np.any(op_codes == _AB_CODE)):
        # register-broadcast traffic (mixed host/PIM command streams):
        # always the exact tier, which drives the controller's _serve
        plan = None
    else:
        plan = _vector_plan(
            system, op_codes, fields["channel"], flat_bank, fields["row"]
        )
    if plan is not None:
        makespan = _commit_vector_plan(system, plan)
        system.last_replay_engine = "fast-vectorized"
        if requests is not None:
            _write_back(requests, fields, plan)
    else:
        if requests is None:
            requests = [
                MemRequest(OPS_BY_CODE[code], addr)
                for code, addr in zip(
                    op_codes.tolist(), addrs.tolist()
                )
            ]
        _assign_coords(requests, fields)
        makespan = _replay_exact(system, requests, fields["channel"])
        system.last_replay_engine = "fast-exact"
    system.sim._now = makespan
    return system.gather_stats()


# ----------------------------------------------------------------------
# Tier 1: vectorized closed form
# ----------------------------------------------------------------------
def _vector_plan(
    system: "MemorySystem",
    op_codes: np.ndarray,
    channel: np.ndarray,
    flat_bank: np.ndarray,
    row: np.ndarray,
) -> _t.Optional[_t.List[_t.Optional[dict]]]:
    """Try to solve the whole replay in closed form.

    Returns one record per channel (``None`` entries for idle channels)
    with FIFO outcome codes and the ``A``/``S``/``F`` time arrays, or
    ``None`` when a certificate fails and the exact tier must run.
    """
    config = system.config
    depth = config.queue_depth
    n = op_codes.shape[0]
    table = latency_table(config.timing, config.precharge_ns)
    latencies = np.array([table[name] for name in OUTCOMES])
    n_banks = config.banks_per_channel
    page_bits = config.timing.page_bits
    arrivals_global = np.zeros(n)
    plan: _t.List[_t.Optional[dict]] = []
    for ch in range(config.n_channels):
        idx = np.nonzero(channel == ch)[0]
        n_c = int(idx.shape[0])
        if n_c == 0:
            plan.append(None)
            continue
        bank_c = flat_bank[idx]
        row_c = row[idx]
        pim = op_codes[idx] == _PIM_CODE
        any_pim = bool(pim.any())
        if any_pim and not bool(pim.all()):
            return None  # mixed host/PIM stream: exact tier only
        if config.row_policy == CLOSED:
            # Auto-precharge: every access activates a fresh row — all
            # misses, never a hit or conflict, so FR-FCFS has nothing
            # to hoist (FIFO by construction) and all banks end closed.
            outcome = np.full(n_c, _MISS, dtype=np.int64)
            open_final = [None] * n_banks
            bank_counts = np.zeros((n_banks, 3), dtype=np.int64)
            if any_pim:
                bits_per_request = page_bits * n_banks
                bank_counts[:, _MISS] = n_c
            else:
                bits_per_request = page_bits
                bank_counts[:, _MISS] = np.bincount(
                    bank_c, minlength=n_banks
                )
        elif any_pim:
            # All-bank lockstep: every bank holds the previous PIM row,
            # so outcomes are uniform across banks and follow from the
            # row stream alone.
            outcome = np.empty(n_c, dtype=np.int64)
            outcome[0] = _MISS
            if n_c > 1:
                outcome[1:] = np.where(
                    row_c[1:] == row_c[:-1], _HIT, _CONFLICT
                )
            bits_per_request = page_bits * n_banks
            bank_counts = np.tile(
                np.bincount(outcome, minlength=3), (n_banks, 1)
            )
            open_final: _t.List[_t.Optional[int]] = (
                [int(row_c[-1])] * n_banks
            )
        else:
            # FIFO row-buffer outcomes: compare each request's row with
            # the previous request on the same bank (stable sort groups
            # banks while preserving service order within each).
            order = np.argsort(bank_c, kind="stable")
            sorted_bank = bank_c[order]
            sorted_row = row_c[order]
            prev_sorted = np.full(n_c, -1, dtype=np.int64)
            if n_c > 1:
                same = sorted_bank[1:] == sorted_bank[:-1]
                prev_sorted[1:][same] = sorted_row[:-1][same]
            prev_row = np.empty(n_c, dtype=np.int64)
            prev_row[order] = prev_sorted
            outcome = np.where(
                row_c == prev_row,
                _HIT,
                np.where(prev_row < 0, _MISS, _CONFLICT),
            )
            bits_per_request = page_bits
            bank_counts = np.bincount(
                bank_c * 3 + outcome, minlength=3 * n_banks
            ).reshape(n_banks, 3)
            open_final = [None] * n_banks
            group_ends = np.nonzero(
                np.r_[sorted_bank[1:] != sorted_bank[:-1], True]
            )[0]
            for end in group_ends.tolist():
                open_final[int(sorted_bank[end])] = int(sorted_row[end])
            if (
                config.policy == FRFCFS
                and depth > 1
                and not _fifo_certificate(
                    bank_c, row_c, outcome, depth, n_banks
                )
            ):
                return None
        durations = latencies[outcome]
        finish = np.cumsum(durations)
        start = np.empty(n_c)
        start[0] = 0.0
        start[1:] = finish[:-1]
        arrival = np.zeros(n_c)
        if n_c > depth:
            arrival[depth:] = start[: n_c - depth]
        arrivals_global[idx] = arrival
        plan.append(
            {
                "idx": idx,
                "outcome": outcome,
                "arrival": arrival,
                "start": start,
                "finish": finish,
                "bits": bits_per_request,
                "bank_counts": bank_counts,
                "open_final": open_final,
            }
        )
    # Line-rate certificate: slot-release arrival candidates must be
    # non-decreasing in trace order, or the injector would have stalled
    # some channel behind another's full queue.
    if n > 1 and bool(np.any(np.diff(arrivals_global) < 0)):
        return None
    return plan


def _fifo_certificate(
    bank_c: np.ndarray,
    row_c: np.ndarray,
    outcome: np.ndarray,
    depth: int,
    n_banks: int,
) -> bool:
    """Would FR-FCFS ever reorder this channel's FIFO stream?

    At a selection whose queue head *is* a row hit, FR-FCFS picks the
    oldest hit — the head itself.  So reordering can only start at a
    selection with a non-hit head and some younger queued request
    hitting its bank's open row.  The queue visible at the selection of
    request ``k`` is exactly requests ``k+1 .. k+depth-1`` of the same
    channel (the ``k+depth``-th slot is released by this very dequeue
    and its admission is processed after the selection), so the check
    below is exact while states still follow FIFO — and the first
    would-be deviation is necessarily detected.
    """
    heads = np.nonzero(outcome != _HIT)[0]
    if heads.size == 0:
        return True
    n_c = bank_c.shape[0]
    # open_at_head[i, b]: row open in bank b just before serving
    # heads[i] — evaluated only at the (sparse) non-hit selections, via
    # a binary search into each bank's occurrence list.
    open_at_head = np.full((heads.shape[0], n_banks), -1, dtype=np.int64)
    for b in range(n_banks):
        occurrences = np.nonzero(bank_c == b)[0]
        if occurrences.size == 0:
            continue
        before = np.searchsorted(occurrences, heads)  # strictly before
        has_prior = before > 0
        open_at_head[has_prior, b] = row_c[
            occurrences[before[has_prior] - 1]
        ]
    for offset in range(1, depth):
        queued = heads + offset
        in_range = queued < n_c
        if not bool(in_range.any()):
            break
        at = np.nonzero(in_range)[0]
        queued = queued[in_range]
        if bool(
            np.any(row_c[queued] == open_at_head[at, bank_c[queued]])
        ):
            return False
    return True


def _commit_vector_plan(
    system: "MemorySystem", plan: _t.List[_t.Optional[dict]]
) -> float:
    """Write the closed-form results into the system's collectors.

    Fills each controller's tally/counter/time-weighted collectors and
    each bank's outcome counters with the values the event engine would
    have accumulated, so :meth:`MemorySystem.gather_stats` (and any
    post-replay introspection of banks or controllers) sees the same
    state.  Returns the replay makespan.
    """
    makespan = 0.0
    for controller, data in zip(system.controllers, plan):
        if data is None:
            # the engine's idle controller: one zero-width transition
            controller.utilization.transition("idle", 0.0)
            continue
        arrival = data["arrival"]
        start = data["start"]
        finish = data["finish"]
        n_c = arrival.shape[0]
        latency = finish - arrival
        tally = controller.latency
        mean = latency.mean()
        tally._n = n_c
        tally._sum = float(latency.sum())
        tally._mean = float(mean)
        tally._m2 = float(np.square(latency - mean).sum())
        tally._min = float(latency.min())
        tally._max = float(latency.max())
        controller.completed._count = n_c
        controller.bits_delivered._count = int(data["bits"]) * n_c
        queue = controller.queue_len
        queue._integral = float((start - arrival).sum())
        queue._value = 0.0
        queue._last = float(start[-1])
        queue._min = 0.0
        # Under the line-rate certificate every dequeue's freed slot is
        # refilled at the same instant, so the peak occupancy is the
        # full queue (or the whole trace, when it fits in one fill).
        queue._max = float(min(n_c, system.config.queue_depth))
        busy_until = float(finish[-1])
        utilization = controller.utilization
        utilization._totals = {"idle": 0.0, "busy": busy_until}
        utilization._state = "idle"
        utilization._since = busy_until
        for bank, counts, open_row in zip(
            controller.banks, data["bank_counts"], data["open_final"]
        ):
            bank.hits = int(counts[_HIT])
            bank.misses = int(counts[_MISS])
            bank.conflicts = int(counts[_CONFLICT])
            bank.open_row = open_row
        makespan = max(makespan, busy_until)
    return makespan


def _write_back(
    requests: _t.List[MemRequest],
    fields: _t.Dict[str, np.ndarray],
    plan: _t.List[_t.Optional[dict]],
) -> None:
    """Fill per-request runtime fields from the closed-form arrays."""
    n = len(requests)
    arrival = np.empty(n)
    start = np.empty(n)
    finish = np.empty(n)
    outcome = np.empty(n, dtype=np.int64)
    bits = np.empty(n, dtype=np.int64)
    for data in plan:
        if data is None:
            continue
        idx = data["idx"]
        arrival[idx] = data["arrival"]
        start[idx] = data["start"]
        finish[idx] = data["finish"]
        outcome[idx] = data["outcome"]
        bits[idx] = data["bits"]
    columns = [
        fields["channel"].tolist(),
        fields["bankgroup"].tolist(),
        fields["bank"].tolist(),
        fields["row"].tolist(),
        fields["column"].tolist(),
        arrival.tolist(),
        start.tolist(),
        finish.tolist(),
        outcome.tolist(),
        bits.tolist(),
    ]
    for request, ch, bg, bk, ro, col, arr, st, fin, out, nbits in zip(
        requests, *columns
    ):
        request.coords = Coordinates(ch, bg, bk, ro, col)
        request.arrival = arr
        request.start_service = st
        request.finish = fin
        request.outcome = OUTCOMES[out]
        request.bits = nbits


# ----------------------------------------------------------------------
# Tier 2: exact incremental replay
# ----------------------------------------------------------------------
def _assign_coords(
    requests: _t.List[MemRequest], fields: _t.Dict[str, np.ndarray]
) -> None:
    """Vectorized-decode counterpart of per-request ``system.route``."""
    for request, ch, bg, bk, ro, col in zip(
        requests,
        fields["channel"].tolist(),
        fields["bankgroup"].tolist(),
        fields["bank"].tolist(),
        fields["row"].tolist(),
        fields["column"].tolist(),
    ):
        request.coords = Coordinates(ch, bg, bk, ro, col)


def _replay_exact(
    system: "MemorySystem",
    requests: _t.List[MemRequest],
    channel: np.ndarray,
) -> float:
    """Replay with the event engine's exact scheduling order, eventless.

    A heap of plain ``(time, priority, seq, kind, channel, request)``
    tuples reproduces the desim calendar's ``(time, priority,
    insertion-order)`` discipline for the only three occurrences that
    carry state: request completions, injector resumptions (a freed
    queue slot), and controller wakeups (an enqueue into an idle
    channel).  All statistics flow through the same controller and bank
    methods the event engine uses, in the same order, with the same
    timestamps — so the resulting stats are bit-identical.  Returns the
    replay makespan.

    Occurrences are drained in *rounds*: each outer iteration reads the
    heap's earliest timestamp once and pops every candidate ready at
    that instant (completions, the injector resumption they release,
    and the wakeups those admissions trigger all coincide in this
    workload), so the common completion→inject→wakeup cascade costs one
    round instead of three top-of-loop passes.  Pops stay globally
    ordered by ``(time, priority, seq)`` — a round is just the
    same-time prefix of the calendar — so the statistics are unchanged.
    """
    controllers = system.controllers
    depth = system.config.queue_depth
    for controller in controllers:
        # mirror each controller process's startup idle transition
        controller.utilization.transition("idle", 0.0)
    idle = [True] * len(controllers)
    woken = [False] * len(controllers)
    heap: _t.List[tuple] = []
    push = heapq.heappush
    seq = itertools.count()
    channel_of = channel.tolist()
    n = len(requests)
    cursor = 0  # next request the injector will admit
    blocked_on = -1  # channel whose full queue blocks the injector
    now = 0.0

    push(heap, (0.0, _URGENT, next(seq), _INJECT, -1, None))
    pop = heapq.heappop
    while heap:
        round_time = heap[0][0]
        while heap and heap[0][0] == round_time:
            now, _prio, _seq, kind, ch, request = pop(heap)
            if kind == _COMPLETE:
                controller = controllers[ch]
                controller._finish_service(request, now)
                if controller.pending:
                    served, latency = controller._begin_service(now)
                    if blocked_on == ch:
                        blocked_on = -1
                        push(
                            heap,
                            (now, _NORMAL, next(seq), _INJECT, -1, None),
                        )
                    push(
                        heap,
                        (
                            now + latency,
                            _NORMAL,
                            next(seq),
                            _COMPLETE,
                            ch,
                            served,
                        ),
                    )
                else:
                    controller.utilization.transition("idle", now)
                    idle[ch] = True
                    woken[ch] = False
            elif kind == _INJECT:
                while cursor < n:
                    target = channel_of[cursor]
                    controller = controllers[target]
                    if len(controller.pending) >= depth:
                        blocked_on = target
                        break
                    controller._admit(requests[cursor], now)
                    if idle[target] and not woken[target]:
                        woken[target] = True
                        push(
                            heap,
                            (
                                now, _NORMAL, next(seq), _WAKEUP,
                                target, None,
                            ),
                        )
                    cursor += 1
                else:
                    blocked_on = -1
            else:  # _WAKEUP
                idle[ch] = False
                woken[ch] = False
                controller = controllers[ch]
                served, latency = controller._begin_service(now)
                if blocked_on == ch:
                    blocked_on = -1
                    push(
                        heap,
                        (now, _NORMAL, next(seq), _INJECT, -1, None),
                    )
                push(
                    heap,
                    (
                        now + latency,
                        _NORMAL,
                        next(seq),
                        _COMPLETE,
                        ch,
                        served,
                    ),
                )
    return now
