"""Per-channel memory controllers as desim processes.

Each channel owns a request queue and a set of banks.  The controller
process repeatedly picks a queued request under its scheduling policy,
drives the target bank's row-buffer state machine, holds the channel for
the access latency, and completes the request:

* **FCFS** serves strictly in arrival order — the baseline that pays a
  row activation whenever consecutive requests touch different rows.
* **FR-FCFS** (first-ready, first-come-first-served) serves the oldest
  request that *hits* an open row buffer, falling back to the oldest
  request overall — the standard policy that harvests row locality from
  an interleaved stream (Rixner et al.), and the one real PIM memory
  controllers such as HBM-PIM's use.

PIM requests are all-bank operations: every bank of the channel executes
the access in lockstep (latency is the slowest bank's), so one command
moves ``n_banks`` pages — the bandwidth-reclaiming broadcast mode.
AB requests are all-bank *register* broadcasts (CRF microcode, SRF/GRF
register writes for the per-bank PIM execution units of
:mod:`repro.pimexec`): they hold the channel for one column access and
move one page of command payload, but never touch the row buffers.

With a :class:`~repro.memsys.bank.RefreshSchedule` attached, every
scheduling decision is gated by :meth:`ChannelController._service_delay`
first: due refresh boundaries precharge their row buffers, and a
selection that would start inside a blackout window stalls until the
window ends (the whole channel under per-rank refresh; only requests
touching the refreshing bank under per-bank refresh).  The gate is pure
arithmetic on the clock, shared verbatim with the exact fast-path tier
so both engines stall at bit-identical instants.

Statistics flow through :mod:`repro.desim.stats`: a :class:`Tally` of
request latencies, a :class:`TimeWeighted` queue length, a
:class:`StateTimer` for busy/idle utilization, and :class:`Counter`\\ s
of completed requests and delivered bits.
"""

from __future__ import annotations

import math
import typing as _t

from ..desim import Counter, StateTimer, Tally, TimeWeighted
from ..desim.events import Event
from .bank import Bank, PER_RANK, RefreshSchedule
from .request import MemRequest, Op

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..desim.core import Simulator

__all__ = ["FCFS", "FRFCFS", "POLICIES", "ChannelController"]

#: Scheduling policy names.
FCFS = "fcfs"
FRFCFS = "frfcfs"
POLICIES = (FCFS, FRFCFS)


class ChannelController:
    """Request queue + scheduler + banks for one channel.

    Parameters
    ----------
    sim:
        The simulator whose clock (ns) the controller runs on.
    channel_id:
        Index of this channel in the system.
    banks:
        The channel's banks, flattened across bankgroups.
    policy:
        ``"fcfs"`` or ``"frfcfs"``.
    queue_depth:
        Maximum queued requests; injectors wait on
        :meth:`space_event` when the queue is full (backpressure).
    banks_per_group:
        Banks per bankgroup, for flattening decoded coordinates into
        the ``banks`` list; defaults to ``len(banks)`` (one group).
    refresh:
        Optional :class:`~repro.memsys.bank.RefreshSchedule`; ``None``
        disables refresh modeling.
    """

    def __init__(
        self,
        sim: "Simulator",
        channel_id: int,
        banks: _t.Sequence[Bank],
        policy: str = FRFCFS,
        queue_depth: int = 16,
        banks_per_group: _t.Optional[int] = None,
        refresh: _t.Optional[RefreshSchedule] = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; available: {POLICIES}"
            )
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if not banks:
            raise ValueError("a channel needs at least one bank")
        self.sim = sim
        self.channel_id = channel_id
        self.banks = list(banks)
        self.policy = policy
        self.queue_depth = queue_depth
        self.banks_per_group = (
            len(self.banks) if banks_per_group is None else banks_per_group
        )
        if not 1 <= self.banks_per_group <= len(self.banks):
            raise ValueError(
                f"banks_per_group={self.banks_per_group} must be in "
                f"[1, {len(self.banks)}]"
            )

        if refresh is not None and refresh.n_banks != len(self.banks):
            raise ValueError(
                f"refresh schedule sized for {refresh.n_banks} banks "
                f"but the channel has {len(self.banks)}"
            )
        self.refresh = refresh
        #: Per-bank count of refresh boundaries already applied (row
        #: closures are lazy: folded in before the next selection).
        self._refresh_applied = [0] * len(self.banks)
        #: Serviceable request staged by the per-bank refresh gate for
        #: the selection that immediately follows it.
        self._refresh_candidate: _t.Optional[MemRequest] = None

        #: Per-bank open-row table bookkeeping (FR-FCFS only): queued
        #: single-bank requests per bank, plus the count of queued
        #: requests currently hitting their bank's open row.  When the
        #: count is zero, :meth:`_select` skips the queue scan entirely
        #: — the dominant case on random traffic, where the scan was
        #: the exact replay tier's hot path.
        self._track_hits = policy == FRFCFS
        self._bank_queue: _t.List[_t.List[MemRequest]] = [
            [] for _ in self.banks
        ]
        self._queued_hits = 0

        self.pending: _t.List[MemRequest] = []
        self._wakeup: _t.Optional[Event] = None
        self._space_waiters: _t.List[Event] = []

        name = f"ch{channel_id}"
        self.latency = Tally(f"{name}.latency")
        self.queue_len = TimeWeighted(f"{name}.queue", 0.0, sim.now)
        self.utilization = StateTimer("idle", sim.now, f"{name}.state")
        self.completed = Counter(f"{name}.requests", sim.now)
        self.bits_delivered = Counter(f"{name}.bits", sim.now)

        self.process = sim.process(self._run(), name=f"memctrl.{name}")

    # ------------------------------------------------------------------
    # queue admission
    # ------------------------------------------------------------------
    @property
    def has_space(self) -> bool:
        return len(self.pending) < self.queue_depth

    def space_event(self) -> Event:
        """Event that succeeds the next time a queue slot frees up."""
        event = self.sim.event()
        self._space_waiters.append(event)
        return event

    def _admit(self, request: MemRequest, now: float) -> None:
        """Timestamp and queue ``request`` at ``now``, updating stats.

        The admission bookkeeping shared by the event engine (via
        :meth:`enqueue`) and the fast-path replay engine (which drives
        the controller with an incremental ready-time scan instead of a
        simulator clock).  The request's flat bank index is resolved
        here, once, so the FR-FCFS selection scan (the replay hot path)
        does not re-derive it per candidate per selection.
        """
        request.arrival = now
        coords = request.coords
        op = request.op
        index = (
            self._bank_index(coords)
            if coords is not None
            and op is not Op.PIM
            and op is not Op.AB
            else None
        )
        request.bank_index = index
        if self._track_hits and index is not None:
            self._bank_queue[index].append(request)
            hit = self.banks[index].open_row == coords.row
            request.queued_hit = hit
            if hit:
                self._queued_hits += 1
        self.pending.append(request)
        self.queue_len.update(len(self.pending), now)

    def enqueue(self, request: MemRequest) -> Event:
        """Admit ``request``; returns its completion event.

        Raises
        ------
        OverflowError
            If the queue is full — callers must respect
            :attr:`has_space` / :meth:`space_event`.
        """
        if not self.has_space:
            raise OverflowError(
                f"channel {self.channel_id} queue full "
                f"(depth {self.queue_depth})"
            )
        request.done = self.sim.event()
        self._admit(request, self.sim.now)
        self.sim.trace(
            "memsys.enqueue", channel=self.channel_id, addr=request.addr,
            op=request.op.value,
        )
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return request.done

    # ------------------------------------------------------------------
    # refresh gate
    # ------------------------------------------------------------------
    def _service_delay(self, now: float) -> float:
        """Refresh gate: apply due row closures, return the stall (ns).

        Called before every scheduling decision, by the event engine and
        the exact fast-path tier alike (same floats in, same floats
        out).  Crossing a refresh boundary precharges the refreshed
        banks' row buffers.  Under *per-rank* refresh a decision inside
        the blackout window stalls the whole channel to the window's
        end.  Under *per-bank* (staggered) refresh the gate is
        refresh-aware the way real controllers are: FR-FCFS masks out
        requests whose bank is mid-refresh and serves the oldest
        serviceable row hit (else the oldest serviceable request), so
        the channel keeps working around the refreshing bank; the
        channel stalls only when nothing is serviceable — FCFS keeps
        strict order and stalls on a blocked head, and the AB barrier
        still lets nothing younger pass a register broadcast.  A
        serviceable pick is staged for :meth:`_select` via
        ``_refresh_candidate`` so the gate and the selection agree.
        """
        refresh = self.refresh
        if refresh is None:
            return 0.0
        applied = self._refresh_applied
        if refresh.granularity == PER_RANK:
            epoch = refresh.epoch(now)
            if epoch > applied[0]:
                for index, bank in enumerate(self.banks):
                    bank.precharge()
                    self._rescan_bank(index)
                for index in range(len(applied)):
                    applied[index] = epoch
            fence = refresh.rank_fence(now)
            return fence - now if fence > now else 0.0
        for index, bank in enumerate(self.banks):
            epoch = refresh.bank_epoch(now, index)
            if epoch >= 1 and epoch > applied[index]:
                bank.precharge()
                applied[index] = epoch
                self._rescan_bank(index)
        frfcfs = self.policy == FRFCFS
        banks = self.banks
        fallback: _t.Optional[MemRequest] = None
        earliest = math.inf
        head = self.pending[0]
        for request in self.pending:
            op = request.op
            if op is Op.AB and request is not head:
                # register-broadcast barrier cuts both ways: nothing
                # younger passes it, and it passes nothing older
                break
            if op is Op.PIM or op is Op.AB:
                fence = refresh.all_bank_fence(now)
            else:
                index = request.bank_index
                if index is None:
                    index = self._bank_index(request.coords)
                fence = refresh.bank_fence(now, index)
            if fence <= now:  # serviceable now
                if fallback is None:
                    fallback = request
                if (
                    frfcfs
                    and op is not Op.PIM
                    and op is not Op.AB
                    and request.bank_index is not None
                    and banks[request.bank_index].open_row
                    == request.coords.row
                ):
                    # oldest serviceable row hit wins outright
                    self._refresh_candidate = request
                    return 0.0
            else:
                earliest = min(earliest, fence)
            if op is Op.AB or not frfcfs:
                # register-broadcast barrier; FCFS never looks past
                # its head
                break
        if fallback is not None:
            self._refresh_candidate = fallback
            return 0.0
        return earliest - now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _rescan_bank(self, index: int) -> None:
        """Refresh the open-row table entries of one bank's queue.

        Called whenever ``banks[index].open_row`` may have changed (a
        service on that bank, or a refresh precharge), so
        ``_queued_hits`` stays exact and the scan-skip in
        :meth:`_select` never misses a hit.
        """
        if not self._track_hits:
            return
        open_row = self.banks[index].open_row
        delta = 0
        for request in self._bank_queue[index]:
            hit = open_row == request.coords.row
            if hit != request.queued_hit:
                request.queued_hit = hit
                delta += 1 if hit else -1
        self._queued_hits += delta

    def _select(self) -> MemRequest:
        """Pick the next request under the configured policy."""
        candidate = self._refresh_candidate
        if candidate is not None:
            # the per-bank refresh gate already made this decision
            self._refresh_candidate = None
            return candidate
        # the open-row table says no queued request hits: FR-FCFS has
        # nothing to hoist, so the scan below would fall through to the
        # head anyway — skip it (the dominant case on random traffic)
        if self.policy == FRFCFS and self._queued_hits:
            ab = Op.AB
            banks = self.banks
            for request in self.pending:  # oldest row hit first
                if request.op is ab:
                    # register broadcasts change PIM execution state:
                    # never reorder a younger row hit across one
                    break
                index = request.bank_index
                if index is None:  # all-bank PIM, or unrouted
                    continue
                # inlined Bank.is_hit: this scan is the replay hot path
                if banks[index].open_row == request.coords.row:
                    return request
        return self.pending[0]

    def _bank_index(self, coords) -> int:
        return coords.flat_bank(self.banks_per_group) % len(self.banks)

    # ------------------------------------------------------------------
    # service
    # ------------------------------------------------------------------
    def _serve(self, request: MemRequest) -> float:
        """Drive the bank state machine(s); returns the access latency."""
        coords = request.coords
        assert coords is not None
        page_bits = self.banks[0].timing.page_bits
        if request.op is Op.AB:
            # All-bank register broadcast: one column access on the
            # command/data bus, no row-buffer interaction in any bank.
            request.outcome = "broadcast"
            request.bits = page_bits
            return self.banks[0].timing.page_access_ns
        if request.op is Op.PIM:
            # All-bank broadcast: every bank accesses the row in
            # lockstep; the channel is held for the slowest bank.
            latency = 0.0
            worst = "hit"
            for bank in self.banks:
                access = bank.access(coords.row)
                if access.latency_ns > latency:
                    latency = access.latency_ns
                    worst = access.outcome
            request.outcome = worst
            request.bits = page_bits * len(self.banks)
            return latency
        index = (
            request.bank_index
            if request.bank_index is not None
            else self._bank_index(coords)
        )
        access = self.banks[index].access(coords.row)
        request.outcome = access.outcome
        request.bits = page_bits
        return access.latency_ns

    def _begin_service(self, now: float) -> _t.Tuple[MemRequest, float]:
        """Dequeue the next request at ``now`` and drive its banks.

        The service-start sequence shared by both engines: busy
        transition, policy selection, queue-length update, and the bank
        state-machine access.  Returns ``(request, latency_ns)``; the
        caller owns the passage of time (a desim timeout for the event
        engine, ready-time arithmetic for the fast path).
        """
        self.utilization.transition("busy", now)
        request = self._select()
        self.pending.remove(request)
        self.queue_len.update(len(self.pending), now)
        request.start_service = now
        if not self._track_hits:
            return request, self._serve(request)
        index = request.bank_index
        if index is not None:
            queue = self._bank_queue[index]
            for position, queued in enumerate(queue):
                if queued is request:  # identity: eq is field-wise
                    del queue[position]
                    break
            if request.queued_hit:
                self._queued_hits -= 1
        latency = self._serve(request)
        # the service may have moved open rows: refresh the table
        if index is not None:
            self._rescan_bank(index)
        elif request.op is Op.PIM:
            for bank in range(len(self.banks)):
                self._rescan_bank(bank)
        # AB broadcasts never touch row buffers: nothing to rescan
        return request, latency

    def _finish_service(self, request: MemRequest, now: float) -> None:
        """Record the completion of ``request`` at ``now``."""
        request.finish = now
        self.latency.record(request.latency)
        self.completed.increment()
        self.bits_delivered.increment(request.bits)

    def _run(self):
        """Controller main loop (a desim process)."""
        sim = self.sim
        while True:
            if not self.pending:
                self.utilization.transition("idle", sim.now)
                self._wakeup = sim.event()
                yield self._wakeup
                self._wakeup = None
            delay = self._service_delay(sim.now)
            if delay > 0.0:
                # refresh blackout: stall, then re-evaluate (the queue
                # may have grown and row buffers were precharged)
                yield sim.timeout(delay)
                continue
            request, latency = self._begin_service(sim.now)
            waiters, self._space_waiters = self._space_waiters, []
            for waiter in waiters:
                if not waiter.triggered:
                    waiter.succeed()
            yield sim.timeout(latency)
            self._finish_service(request, sim.now)
            sim.trace(
                "memsys.complete", channel=self.channel_id,
                addr=request.addr, outcome=request.outcome,
                latency=request.latency,
            )
            done = request.done
            assert done is not None
            done.succeed(request)

    # ------------------------------------------------------------------
    # collector state export/load (the replay farm's merge hooks)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Exact post-replay collector + bank state of this channel.

        Captures the raw internals of every statistics collector and
        every bank's row-buffer state machine, so a shard worker can
        ship its channel's evolution across a process boundary and the
        farm supervisor can :meth:`load_state` it into a fresh
        controller — after which every stats reduction
        (:meth:`~repro.memsys.MemorySystem.gather_stats`,
        :meth:`metrics`) computes **bit-identical** floats, because the
        same reduction code runs on identical collector states.

        Only valid between replays (an empty queue); the transient
        scheduling structures (pending queue, open-row table) are
        deliberately not part of the contract.
        """
        if self.pending:
            raise RuntimeError(
                f"channel {self.channel_id} still has "
                f"{len(self.pending)} pending request(s); export_state "
                "is a post-replay hook"
            )
        return {
            "channel_id": self.channel_id,
            "latency": self.latency.state_dict(),
            "queue_len": self.queue_len.state_dict(),
            "utilization": self.utilization.state_dict(),
            "completed": self.completed.state_dict(),
            "bits_delivered": self.bits_delivered.state_dict(),
            "refresh_applied": list(self._refresh_applied),
            "banks": [bank.export_state() for bank in self.banks],
        }

    def load_state(self, state: _t.Mapping[str, _t.Any]) -> None:
        """Restore the exact state captured by :meth:`export_state`."""
        banks = state["banks"]
        if len(banks) != len(self.banks):
            raise ValueError(
                f"state carries {len(banks)} banks but channel "
                f"{self.channel_id} has {len(self.banks)}"
            )
        self.latency.load_state(state["latency"])
        self.queue_len.load_state(state["queue_len"])
        self.utilization.load_state(state["utilization"])
        self.completed.load_state(state["completed"])
        self.bits_delivered.load_state(state["bits_delivered"])
        self._refresh_applied = [
            int(epoch) for epoch in state["refresh_applied"]
        ]
        for bank, bank_state in zip(self.banks, banks):
            bank.load_state(bank_state)

    # ------------------------------------------------------------------
    @property
    def row_hit_rate(self) -> float:
        """Aggregate row-hit rate over the channel's banks."""
        hits = sum(b.hits for b in self.banks)
        total = sum(b.accesses for b in self.banks)
        return hits / total if total else float("nan")

    def metrics(self, now: float) -> _t.Dict[str, float]:
        """Collector snapshot for the telemetry registry.

        Exposes the per-channel extremes the flat
        :class:`~repro.memsys.system.MemSysStats` summary reduces away
        — latency min/max, peak queue occupancy, busy fraction — so a
        metrics export preserves them.  Both replay engines leave the
        underlying collectors in the same state, so the snapshot is
        engine-independent.
        """
        return {
            "requests": float(self.completed.count),
            "bits_delivered": float(self.bits_delivered.count),
            "latency_min_ns": self.latency.minimum,
            "latency_max_ns": self.latency.maximum,
            "queue_mean": self.queue_len.time_average(now),
            "queue_max": self.queue_len.maximum,
            "busy_fraction": self.utilization.fraction("busy", now),
            "row_hit_rate": self.row_hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"<ChannelController ch{self.channel_id} {self.policy} "
            f"banks={len(self.banks)} pending={len(self.pending)}>"
        )
