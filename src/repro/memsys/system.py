"""The top-level trace-driven memory system.

:class:`MemorySystem` ties an :class:`~repro.memsys.addrmap.AddressMap`
to a set of per-channel controllers (each with its banks) on one
:class:`~repro.desim.Simulator` clock, replays request streams with
bounded-queue backpressure, and reduces the per-channel
:mod:`repro.desim.stats` collectors into a :class:`MemSysStats` summary:
sustained bandwidth, row-hit rate, and queue latency — the simulated
counterparts of the §2.1 closed forms in :mod:`repro.arch.dram`.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

from ..arch.dram import DramMacroTiming
from ..desim import Simulator
from .addrmap import AddressMap, SCHEMES
from .bank import (
    Bank,
    OPEN,
    PER_RANK,
    REFRESH_GRANULARITIES,
    ROW_POLICIES,
    RefreshSchedule,
)
from .controller import FRFCFS, POLICIES, ChannelController
from .request import MemRequest, Op
from .trace import PackedTrace

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..telemetry import ReplayTelemetry

__all__ = ["ENGINES", "MemSysConfig", "MemSysStats", "MemorySystem"]

#: Replay engine names accepted by :meth:`MemorySystem.replay`.
ENGINES = ("event", "fast", "auto")


def _log2(value: int, what: str) -> int:
    if value < 1 or value & (value - 1):
        raise ValueError(f"{what} must be a power of two, got {value}")
    return value.bit_length() - 1


@dataclasses.dataclass(frozen=True)
class MemSysConfig:
    """Geometry, timing, and policy of one simulated memory system.

    Attributes
    ----------
    n_channels, bankgroups, banks_per_group:
        Resource counts (powers of two); total banks per channel is
        ``bankgroups * banks_per_group``.
    rows_per_bank:
        Rows per bank (power of two); sets the row field width.
    timing:
        Per-bank macro timing (paper defaults if omitted); the column
        field width and transaction size derive from ``page_bits``.
    precharge_ns:
        Explicit row-conflict precharge (0 matches the analytic model).
    scheme:
        Address-interleaving scheme name (see
        :data:`repro.memsys.addrmap.SCHEMES`).
    policy:
        Controller scheduling policy (``"fcfs"`` / ``"frfcfs"``).
    queue_depth:
        Per-channel request-queue depth.
    row_policy:
        Row-buffer management: ``"open"`` (default) keeps rows latched
        between accesses, ``"closed"`` auto-precharges after every
        access (each access pays a fresh activation, none a conflict).
    trefi_ns, trfc_ns:
        Refresh interval and refresh cycle time in ns.  The default
        ``trefi_ns=0`` disables refresh modeling; with ``trefi_ns > 0``
        every ``trefi_ns`` a refresh precharges row buffers and blacks
        out its resource for ``trfc_ns`` (see
        :class:`~repro.memsys.bank.RefreshSchedule`).  HBM2-class
        numbers are ``trefi_ns=3900, trfc_ns=350``.
    refresh_granularity:
        ``"per-rank"`` (default: all banks of a channel refresh
        together, the channel stalls) or ``"per-bank"`` (staggered:
        only the refreshing bank is blocked).
    """

    n_channels: int = 2
    bankgroups: int = 2
    banks_per_group: int = 2
    rows_per_bank: int = 16384
    timing: DramMacroTiming = dataclasses.field(
        default_factory=DramMacroTiming
    )
    precharge_ns: float = 0.0
    scheme: str = "row-major"
    policy: str = FRFCFS
    queue_depth: int = 16
    row_policy: str = OPEN
    trefi_ns: float = 0.0
    trfc_ns: float = 0.0
    refresh_granularity: str = PER_RANK

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; available: "
                f"{sorted(SCHEMES)}"
            )
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; available: {POLICIES}"
            )
        if self.queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.row_policy not in ROW_POLICIES:
            raise ValueError(
                f"unknown row_policy {self.row_policy!r}; available: "
                f"{ROW_POLICIES}"
            )
        if self.precharge_ns < 0:
            raise ValueError(
                f"precharge_ns must be >= 0, got {self.precharge_ns}"
            )
        if self.trefi_ns < 0 or self.trfc_ns < 0:
            raise ValueError(
                f"trefi_ns and trfc_ns must be >= 0, got "
                f"trefi_ns={self.trefi_ns} trfc_ns={self.trfc_ns}"
            )
        if self.trefi_ns == 0 and self.trfc_ns > 0:
            raise ValueError(
                "trfc_ns > 0 needs trefi_ns > 0 (refresh is enabled "
                "by a positive refresh interval)"
            )
        if self.refresh_granularity not in REFRESH_GRANULARITIES:
            raise ValueError(
                f"unknown refresh_granularity "
                f"{self.refresh_granularity!r}; available: "
                f"{REFRESH_GRANULARITIES}"
            )
        self.refresh_schedule()  # validates tRFC against tREFI
        self.address_map()  # validates the power-of-two geometry

    @property
    def banks_per_channel(self) -> int:
        return self.bankgroups * self.banks_per_group

    @property
    def refresh_enabled(self) -> bool:
        return self.trefi_ns > 0

    def refresh_schedule(self) -> _t.Optional[RefreshSchedule]:
        """The per-channel refresh schedule (``None`` when disabled)."""
        if not self.refresh_enabled:
            return None
        return RefreshSchedule(
            trefi_ns=self.trefi_ns,
            trfc_ns=self.trfc_ns,
            granularity=self.refresh_granularity,
            n_banks=self.banks_per_channel,
        )

    @property
    def transaction_bytes(self) -> int:
        """Bytes per transaction: one page of the row buffer."""
        return self.timing.page_bits // 8

    def address_map(self) -> AddressMap:
        """The bit-field map implied by this geometry."""
        return AddressMap.from_scheme(
            self.scheme,
            channel_bits=_log2(self.n_channels, "n_channels"),
            bankgroup_bits=_log2(self.bankgroups, "bankgroups"),
            bank_bits=_log2(self.banks_per_group, "banks_per_group"),
            row_bits=_log2(self.rows_per_bank, "rows_per_bank"),
            column_bits=_log2(
                self.timing.pages_per_row, "pages_per_row"
            ),
            offset_bits=_log2(
                max(1, self.transaction_bytes), "transaction bytes"
            ),
        )


@dataclasses.dataclass
class MemSysStats:
    """Replay summary, reduced from the desim collectors."""

    n_requests: int
    total_bits: int
    makespan_ns: float
    sustained_bits_per_sec: float
    row_hit_rate: float
    row_hits: int
    row_misses: int
    row_conflicts: int
    mean_queue_latency_ns: float
    #: Time-averaged queue length per channel (averaged over channels,
    #: like :attr:`channel_utilization`).
    mean_queue_length: float
    channel_utilization: float
    per_channel: _t.List[dict]

    def to_rows(self) -> _t.List[dict]:
        """Per-channel table rows for CSV/report export."""
        return self.per_channel

    def summary(self) -> dict:
        """Flat system-level row for CSV/report export."""
        return {
            "requests": self.n_requests,
            "sustained_gbit_per_s": self.sustained_bits_per_sec / 1e9,
            "row_hit_rate": self.row_hit_rate,
            "mean_latency_ns": self.mean_queue_latency_ns,
            "mean_queue_length": self.mean_queue_length,
            "utilization": self.channel_utilization,
            "makespan_ns": self.makespan_ns,
        }


class MemorySystem:
    """Banked, multi-channel memory system on a desim clock.

    Parameters
    ----------
    config:
        Geometry/timing/policy; defaults to :class:`MemSysConfig`.
    sim:
        An existing simulator to share a clock with other models; a
        private one is created if omitted.
    """

    def __init__(
        self,
        config: _t.Optional[MemSysConfig] = None,
        sim: _t.Optional[Simulator] = None,
    ) -> None:
        self.config = config or MemSysConfig()
        # an idle Simulator is falsy (it has __len__), so test identity
        self._private_sim = sim is None
        self.sim = sim if sim is not None else Simulator()
        self.addr_map = self.config.address_map()
        self._replayed = False
        #: Which engine the last :meth:`replay` used: ``"event"``,
        #: ``"fast-vectorized"``, or ``"fast-exact"`` (``None`` before
        #: any replay).
        self.last_replay_engine: _t.Optional[str] = None
        self.controllers: _t.List[ChannelController] = []
        for channel in range(self.config.n_channels):
            banks = [
                Bank(
                    self.config.timing,
                    self.config.precharge_ns,
                    name=f"ch{channel}.b{index}",
                    row_policy=self.config.row_policy,
                )
                for index in range(self.config.banks_per_channel)
            ]
            self.controllers.append(
                ChannelController(
                    self.sim,
                    channel,
                    banks,
                    policy=self.config.policy,
                    queue_depth=self.config.queue_depth,
                    banks_per_group=self.config.banks_per_group,
                    refresh=self.config.refresh_schedule(),
                )
            )

    # ------------------------------------------------------------------
    # request routing
    # ------------------------------------------------------------------
    def route(self, request: MemRequest) -> ChannelController:
        """Decode the request's coordinates; return its controller."""
        request.coords = self.addr_map.decode(request.addr)
        return self.controllers[request.coords.channel]

    def submit(self, request: MemRequest):
        """Route and enqueue one request; returns its completion event.

        The caller must respect queue backpressure (see
        :meth:`ChannelController.has_space`); :meth:`replay` does.
        """
        return self.route(request).enqueue(request)

    def pim_broadcast(self, row: int) -> _t.List[MemRequest]:
        """Issue one PIM all-bank request per channel for ``row``.

        Convenience for chip-wide PIM kernels; returns the requests.
        """
        requests = []
        for channel in range(self.config.n_channels):
            coords = dataclasses.replace(
                self.addr_map.decode(0), channel=channel, row=row
            )
            request = MemRequest(Op.PIM, self.addr_map.encode(coords))
            self.submit(request)
            requests.append(request)
        return requests

    # ------------------------------------------------------------------
    # trace replay
    # ------------------------------------------------------------------
    def _injector(self, requests: _t.Sequence[MemRequest]):
        for request in requests:
            when = request.timestamp
            if when is not None and when > self.sim.now:
                # hold the stream until the trace arrival time; sim.at
                # fires at exactly `when`, so arrival timestamps match
                # the fast path bit-for-bit
                yield self.sim.at(when)
            controller = self.route(request)
            while not controller.has_space:
                yield controller.space_event()
            controller.enqueue(request)

    def replay(
        self,
        requests: _t.Union[_t.Sequence[MemRequest], PackedTrace],
        engine: str = "auto",
        telemetry: _t.Optional["ReplayTelemetry"] = None,
    ) -> MemSysStats:
        """Replay ``requests``; run to completion.

        Untimestamped requests are injected in order as queue slots
        free up (bounded by ``config.queue_depth`` per channel),
        modeling an open queue fed at line rate — the
        sustained-bandwidth regime of §2.1.  A uniformly *timestamped*
        trace is additionally held to its recorded arrival times: each
        request enters its queue no earlier than its timestamp (and no
        earlier than its predecessors), replaying the trace's actual
        traffic intensity.

        Parameters
        ----------
        requests:
            A sequence of :class:`MemRequest` objects or a
            :class:`~repro.memsys.trace.PackedTrace`.
        engine:
            * ``"event"`` — the desim event engine: every request is a
              scheduled process step; per-event trace hooks fire; every
              per-request runtime field is filled in.
            * ``"fast"`` — the event-free fast path
              (:mod:`repro.memsys.fastpath`): closed-form ready-time
              arithmetic, identical ``MemSysStats``, orders of magnitude
              faster.  Per-request runtime fields are filled in only for
              object traces (never for :class:`PackedTrace` inputs), and
              no per-event trace records are emitted.
            * ``"auto"`` (default) — the fast path whenever no per-event
              trace hooks are installed (``sim.tracer is None``), the
              simulator is private to this system, and its clock is
              untouched (``sim.now == 0``); the event engine otherwise
              (a shared or already-advanced clock, or an attached
              tracer, implies the caller wants the event calendar).
        telemetry:
            Optional :class:`~repro.telemetry.ReplayTelemetry`.  When
            attached, its latency recorder adopts the per-request
            arrival/start/finish times (bit-identical across engines)
            and its profiler times the replay phases; afterwards the
            telemetry holds the stats, engine, and config needed for
            metrics/timeline export.  Off by default and free when off.
        """
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; available: {ENGINES}"
            )
        if not isinstance(requests, PackedTrace):
            requests = list(requests)
            self._validate_timestamps(requests)
        if len(requests) == 0:
            raise ValueError("cannot replay an empty request stream")
        if self._replayed:
            raise RuntimeError(
                "this MemorySystem has already replayed a trace; its "
                "counters are cumulative — build a fresh MemorySystem "
                "per trace"
            )
        if engine == "auto":
            engine = (
                "fast"
                if self._private_sim
                and self.sim.tracer is None
                and self.sim.now == 0.0
                else "event"
            )
        if engine == "fast":
            from .fastpath import replay_fast

            if self.sim.now != 0.0:
                raise RuntimeError(
                    "the fast-path engine requires a fresh simulator "
                    f"clock (sim.now={self.sim.now!r}); use "
                    "engine='event' on an already-advanced simulator"
                )
            self._replayed = True
            stats = replay_fast(self, requests, telemetry)
            if telemetry is not None:
                telemetry._finish(self, stats)
            return stats
        self._replayed = True

        profiler = telemetry.profiler if telemetry is not None else None
        if isinstance(requests, PackedTrace):
            if profiler is not None:
                with profiler.phase("decode"):
                    requests = requests.to_requests()
            else:
                requests = requests.to_requests()
        self.last_replay_engine = "event"
        self.sim.process(self._injector(requests), name="memsys.injector")
        if profiler is not None:
            with profiler.phase("tier-execute"):
                self.sim.run()
        else:
            self.sim.run()
        unfinished = [r for r in requests if math.isnan(r.finish)]
        if unfinished:  # pragma: no cover - defensive
            raise RuntimeError(
                f"{len(unfinished)} request(s) never completed"
            )
        if telemetry is not None and telemetry.recorder is not None:
            telemetry.recorder._capture_requests(requests)
        if profiler is not None:
            with profiler.phase("stats-gather"):
                stats = self.gather_stats()
        else:
            stats = self.gather_stats()
        if telemetry is not None:
            telemetry._finish(self, stats)
        return stats

    @staticmethod
    def _validate_timestamps(requests: _t.Sequence[MemRequest]) -> None:
        """Reject mixed or decreasing timestamps before any replay.

        (:class:`PackedTrace` inputs validate at construction; this is
        the object-trace counterpart.)
        """
        timed = sum(1 for r in requests if r.timestamp is not None)
        if timed and timed != len(requests):
            raise ValueError(
                "trace mixes timestamped and untimestamped requests; "
                "timestamp every request or none"
            )
        if timed:
            last = 0.0
            for index, request in enumerate(requests):
                when = _t.cast(float, request.timestamp)
                if when < last:
                    raise ValueError(
                        f"request {index}: timestamp {when!r} decreases "
                        f"(previous was {last!r})"
                    )
                last = when

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def gather_stats(self) -> MemSysStats:
        """Reduce controller/bank collectors into a summary."""
        now = self.sim.now
        per_channel = []
        latency = None
        total_bits = 0
        n_requests = 0
        hits = misses = conflicts = 0
        queue_len_sum = 0.0
        busy_sum = 0.0
        for controller in self.controllers:
            banks = controller.banks
            hits += sum(b.hits for b in banks)
            misses += sum(b.misses for b in banks)
            conflicts += sum(b.conflicts for b in banks)
            total_bits += controller.bits_delivered.count
            n_requests += controller.completed.count
            latency = (
                controller.latency
                if latency is None
                else latency.merge(controller.latency)
            )
            mean_queue = controller.queue_len.time_average(now)
            queue_len_sum += 0.0 if math.isnan(mean_queue) else mean_queue
            busy = controller.utilization.fraction("busy", now)
            busy_sum += 0.0 if math.isnan(busy) else busy
            per_channel.append(
                {
                    "channel": controller.channel_id,
                    "requests": controller.completed.count,
                    "row_hit_rate": controller.row_hit_rate,
                    "mean_latency_ns": controller.latency.mean,
                    "gbit_delivered": controller.bits_delivered.count / 1e9,
                }
            )
        accesses = hits + misses + conflicts
        return MemSysStats(
            n_requests=n_requests,
            total_bits=total_bits,
            makespan_ns=now,
            sustained_bits_per_sec=(
                total_bits / (now * 1e-9) if now > 0 else math.nan
            ),
            row_hit_rate=hits / accesses if accesses else math.nan,
            row_hits=hits,
            row_misses=misses,
            row_conflicts=conflicts,
            mean_queue_latency_ns=(
                latency.mean if latency is not None else math.nan
            ),
            mean_queue_length=(
                queue_len_sum / len(self.controllers)
                if self.controllers
                else math.nan
            ),
            channel_utilization=(
                busy_sum / len(self.controllers)
                if self.controllers
                else math.nan
            ),
            per_channel=per_channel,
        )

    def __repr__(self) -> str:
        c = self.config
        return (
            f"<MemorySystem {c.n_channels}ch x "
            f"{c.banks_per_channel}banks {c.scheme} {c.policy}>"
        )
