"""repro.memsys — a trace-driven banked memory-system simulator.

The closed forms in :mod:`repro.arch.dram` answer "what bandwidth *could*
a PIM macro sustain"; this package answers "what bandwidth *does* it
sustain on a concrete access stream".  It models the memory system the
paper sketches — many independent on-chip DRAM macros, each with a row
buffer — at the request level:

* :mod:`~repro.memsys.addrmap` — configurable bit-field physical-address
  mapping (channel / bankgroup / bank / row / column) with pluggable
  interleaving schemes, à la the HBM-PIM physical-address layout;
* :mod:`~repro.memsys.bank` — per-bank row-buffer state machines driven
  by :class:`~repro.arch.dram.DramMacroTiming`, with open-page (rows
  stay latched) and closed-page (auto-precharge after every access)
  row policies, plus the tREFI/tRFC :class:`RefreshSchedule` (per-rank
  blackouts, or staggered per-bank refresh the FR-FCFS scheduler works
  around);
* :mod:`~repro.memsys.request` — host read/write, PIM all-bank, and AB
  register-broadcast request records;
* :mod:`~repro.memsys.controller` — per-channel request queues with FCFS
  and FR-FCFS scheduling, running as :mod:`repro.desim` processes;
* :mod:`~repro.memsys.system` — the top-level :class:`MemorySystem`
  replaying traces and reporting row-hit rate, sustained bandwidth, and
  queue latency through :mod:`repro.desim.stats`;
* :mod:`~repro.memsys.trace` — a text trace format (lazy parser /
  streaming writer), array-backed :class:`PackedTrace` streams, and
  synthetic trace generation from :mod:`repro.workloads.access_patterns`;
* :mod:`~repro.memsys.fastpath` — the event-free fast-path replay
  engine.

The :mod:`repro.pimexec` layer builds on this package to make the
memory system *executable*: per-bank PIM execution units (HBM-PIM-style
CRF/GRF/SRF register files) run microkernels whose every command is an
all-bank column access replayed here, with register and microcode
writes travelling as :attr:`Op.AB <repro.memsys.request.Op>` broadcast
requests that occupy a channel without touching row buffers.

Replay engines
--------------
:meth:`MemorySystem.replay` accepts ``engine="event" | "fast" | "auto"``:

* ``"event"`` replays through the :mod:`repro.desim` kernel — every
  request is a scheduled process step, per-event trace hooks fire, and
  request objects carry their full runtime history (~50k requests/s);
* ``"fast"`` replays through closed-form ready-time arithmetic — banks
  are plain ``(open_row, ready_at_ns)`` records, open-row streaks are
  charged as batched page-access spans, FCFS/FR-FCFS ordering is
  reproduced with an incremental ready-time scan, trace timestamps
  solve a segmented Lindley recurrence, and refresh blackouts become
  epoch-chunked ready-time fences (millions of requests/s; ~5M/s
  measured on a 1M-request streaming replay, ~3M/s with per-rank
  refresh on).  Vectorized certificates decide per trace whether the
  closed form is exact, with an exact bit-identical incremental
  fallback for traces (e.g. random traffic under FR-FCFS, per-bank
  refresh, refresh combined with timestamps) that fail one;
* ``"auto"`` (default) picks the fast path whenever no per-event trace
  hooks are installed (``sim.tracer is None``) and the simulator is
  private to the system with an untouched clock, and the event engine
  otherwise.

Both engines produce the same :class:`MemSysStats`: integer counters,
makespan, and sustained bandwidth exactly, derived float aggregates to
within ~1e-12 relative (the fast path sums vectorized instead of
streaming Welford updates); ``tests/memsys/test_fastpath.py`` and
``tests/memsys/test_refresh.py`` assert this across every scheme x
policy x pattern x refresh granularity x arrival mode combination,
including PIM all-bank traces.

Traces are uniformly *line-rate* (each request injected as soon as its
channel queue has space) or uniformly *timestamped* (an optional third
trace column of non-decreasing arrival times in ns; see
``docs/trace-formats.md``), and refresh is enabled by
``MemSysConfig(trefi_ns=..., trfc_ns=...)``.

Example
-------
>>> from repro.memsys import MemSysConfig, MemorySystem, synthesize_trace
>>> config = MemSysConfig(n_channels=1, bankgroups=1, banks_per_group=1)
>>> reqs = synthesize_trace("sequential", 64, config=config)
>>> stats = MemorySystem(config).replay(reqs)
>>> stats.row_hit_rate > 0.8
True
"""

from .addrmap import AddressMap, Coordinates, SCHEMES
from .bank import (
    Bank,
    BankAccess,
    REFRESH_GRANULARITIES,
    ROW_POLICIES,
    RefreshSchedule,
)
from .controller import ChannelController, FCFS, FRFCFS, POLICIES
from .request import MemRequest, Op
from .system import ENGINES, MemSysConfig, MemSysStats, MemorySystem
from .trace import (
    INTERARRIVALS,
    PackedTrace,
    TRACE_PATTERNS,
    arrival_times,
    format_trace,
    iter_trace,
    parse_trace,
    synthesize_trace,
    write_trace,
)

__all__ = [
    "AddressMap",
    "Coordinates",
    "SCHEMES",
    "Bank",
    "BankAccess",
    "REFRESH_GRANULARITIES",
    "ROW_POLICIES",
    "RefreshSchedule",
    "ChannelController",
    "FCFS",
    "FRFCFS",
    "POLICIES",
    "ENGINES",
    "MemRequest",
    "Op",
    "MemSysConfig",
    "MemSysStats",
    "MemorySystem",
    "INTERARRIVALS",
    "PackedTrace",
    "TRACE_PATTERNS",
    "arrival_times",
    "format_trace",
    "iter_trace",
    "parse_trace",
    "synthesize_trace",
    "write_trace",
]
