"""repro.memsys — a trace-driven banked memory-system simulator.

The closed forms in :mod:`repro.arch.dram` answer "what bandwidth *could*
a PIM macro sustain"; this package answers "what bandwidth *does* it
sustain on a concrete access stream".  It models the memory system the
paper sketches — many independent on-chip DRAM macros, each with a row
buffer — at the request level:

* :mod:`~repro.memsys.addrmap` — configurable bit-field physical-address
  mapping (channel / bankgroup / bank / row / column) with pluggable
  interleaving schemes, à la the HBM-PIM physical-address layout;
* :mod:`~repro.memsys.bank` — per-bank row-buffer state machines driven
  by :class:`~repro.arch.dram.DramMacroTiming`;
* :mod:`~repro.memsys.request` — host read/write and PIM all-bank
  request records;
* :mod:`~repro.memsys.controller` — per-channel request queues with FCFS
  and FR-FCFS scheduling, running as :mod:`repro.desim` processes;
* :mod:`~repro.memsys.system` — the top-level :class:`MemorySystem`
  replaying traces and reporting row-hit rate, sustained bandwidth, and
  queue latency through :mod:`repro.desim.stats`;
* :mod:`~repro.memsys.trace` — a text trace format (parser/writer) plus
  synthetic trace generation from :mod:`repro.workloads.access_patterns`.

Example
-------
>>> from repro.memsys import MemSysConfig, MemorySystem, synthesize_trace
>>> config = MemSysConfig(n_channels=1, bankgroups=1, banks_per_group=1)
>>> reqs = synthesize_trace("sequential", 64, config=config)
>>> stats = MemorySystem(config).replay(reqs)
>>> stats.row_hit_rate > 0.8
True
"""

from .addrmap import AddressMap, Coordinates, SCHEMES
from .bank import Bank, BankAccess
from .controller import ChannelController, FCFS, FRFCFS, POLICIES
from .request import MemRequest, Op
from .system import MemSysConfig, MemSysStats, MemorySystem
from .trace import (
    TRACE_PATTERNS,
    format_trace,
    parse_trace,
    synthesize_trace,
    write_trace,
)

__all__ = [
    "AddressMap",
    "Coordinates",
    "SCHEMES",
    "Bank",
    "BankAccess",
    "ChannelController",
    "FCFS",
    "FRFCFS",
    "POLICIES",
    "MemRequest",
    "Op",
    "MemSysConfig",
    "MemSysStats",
    "MemorySystem",
    "TRACE_PATTERNS",
    "format_trace",
    "parse_trace",
    "synthesize_trace",
    "write_trace",
]
