"""Per-bank row-buffer state machine.

Each bank is one on-chip DRAM macro of the §2.1 model: a grid of rows,
one of which may be latched in the row buffer.  An access to the open
row costs one page access (2 ns with paper timings); opening a closed
bank costs a row activation (20 ns) first; switching rows additionally
pays an explicit precharge, which defaults to 0 because the paper's
conservative 20 ns row-access figure already subsumes it (keeping the
simulated streaming bandwidth exactly equal to
:func:`repro.arch.dram.macro_bandwidth_bits_per_sec`).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..arch.dram import DramMacroTiming

__all__ = ["BankAccess", "Bank", "latency_table", "ROW_POLICIES"]

#: Row-buffer outcomes.
HIT = "hit"
MISS = "miss"
CONFLICT = "conflict"

#: Outcomes in the packed-code order used by the fast-path engine.
OUTCOMES = (HIT, MISS, CONFLICT)

#: Row-buffer management policies.
OPEN = "open"
CLOSED = "closed"
ROW_POLICIES = (OPEN, CLOSED)


def latency_table(
    timing: DramMacroTiming, precharge_ns: float = 0.0
) -> _t.Dict[str, float]:
    """Outcome -> access latency (ns) for one bank.

    The single source of the per-outcome service times: both the
    event-driven :meth:`Bank.access` state machine and the closed-form
    fast-path engine read from this table, so the two engines charge
    bit-identical latencies.
    """
    return {
        HIT: timing.page_access_ns,
        MISS: timing.row_access_ns + timing.page_access_ns,
        CONFLICT: (
            precharge_ns + timing.row_access_ns + timing.page_access_ns
        ),
    }


@dataclasses.dataclass(frozen=True)
class BankAccess:
    """Result of one bank access: latency and row-buffer outcome."""

    latency_ns: float
    outcome: str


class Bank:
    """Row-buffer state machine over :class:`DramMacroTiming`.

    Parameters
    ----------
    timing:
        Macro timing (paper defaults if omitted).
    precharge_ns:
        Explicit precharge cost charged on a row conflict before the new
        activation; 0 by default (folded into ``row_access_ns``).
    name:
        Label used in stats and repr.
    row_policy:
        ``"open"`` (default) keeps the accessed row latched until a
        conflict evicts it; ``"closed"`` auto-precharges after every
        access, so each access pays a fresh activation (counted as a
        miss) but never a conflict — the precharge itself overlaps the
        idle bus (the paper's conservative 20 ns row access already
        subsumes it, matching the open-policy convention).
    """

    __slots__ = (
        "timing", "precharge_ns", "name", "row_policy",
        "open_row", "hits", "misses", "conflicts", "_latency_ns",
    )

    def __init__(
        self,
        timing: _t.Optional[DramMacroTiming] = None,
        precharge_ns: float = 0.0,
        name: str = "bank",
        row_policy: str = OPEN,
    ) -> None:
        if precharge_ns < 0:
            raise ValueError("precharge_ns must be >= 0")
        if row_policy not in ROW_POLICIES:
            raise ValueError(
                f"unknown row_policy {row_policy!r}; available: "
                f"{ROW_POLICIES}"
            )
        self.timing = timing or DramMacroTiming()
        self.precharge_ns = float(precharge_ns)
        self.name = name
        self.row_policy = row_policy
        #: Outcome -> access latency, fixed by the timing parameters.
        #: Shared with the fast-path engine so both engines charge
        #: bit-identical service times.
        self._latency_ns = latency_table(self.timing, self.precharge_ns)
        #: Currently latched row, or ``None`` when the bank is closed.
        self.open_row: _t.Optional[int] = None
        self.hits = 0
        self.misses = 0
        self.conflicts = 0

    # ------------------------------------------------------------------
    def is_hit(self, row: int) -> bool:
        """Would accessing ``row`` hit the open row buffer?"""
        return self.open_row == row

    def access(self, row: int) -> BankAccess:
        """Access one page of ``row``, updating state and counters."""
        if self.row_policy == CLOSED:
            # Auto-precharge: the bank is always closed when the next
            # access arrives, so every access is a fresh activation.
            self.misses += 1
            return BankAccess(self._latency_ns[MISS], MISS)
        if self.open_row == row:
            self.hits += 1
            return BankAccess(self._latency_ns[HIT], HIT)
        if self.open_row is None:
            self.misses += 1
            self.open_row = row
            return BankAccess(self._latency_ns[MISS], MISS)
        self.conflicts += 1
        self.open_row = row
        return BankAccess(self._latency_ns[CONFLICT], CONFLICT)

    def precharge(self) -> None:
        """Close the row buffer (e.g. between PIM kernels or refresh)."""
        self.open_row = None

    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses + self.conflicts

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses served from the open row buffer."""
        n = self.accesses
        return self.hits / n if n else float("nan")

    def __repr__(self) -> str:
        row = "closed" if self.open_row is None else f"row={self.open_row}"
        return (
            f"<Bank {self.name!r} {row} "
            f"h/m/c={self.hits}/{self.misses}/{self.conflicts}>"
        )
