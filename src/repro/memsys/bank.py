"""Per-bank row-buffer state machine and the refresh schedule.

Each bank is one on-chip DRAM macro of the §2.1 model: a grid of rows,
one of which may be latched in the row buffer.  An access to the open
row costs one page access (2 ns with paper timings); opening a closed
bank costs a row activation (20 ns) first; switching rows additionally
pays an explicit precharge, which defaults to 0 because the paper's
conservative 20 ns row-access figure already subsumes it (keeping the
simulated streaming bandwidth exactly equal to
:func:`repro.arch.dram.macro_bandwidth_bits_per_sec`).

Refresh (tREFI / tRFC)
----------------------
DRAM cells leak: every ``tREFI`` ns (the refresh interval) a refresh
command must be issued, and the refreshed resource is unavailable for
``tRFC`` ns (the refresh cycle time).  :class:`RefreshSchedule` models
this as a *deterministic recurring fence* rather than an event source,
so every replay engine — the desim event engine, the exact incremental
fast path, and the vectorized closed-form fast path — derives identical
blackout windows from pure arithmetic on the clock:

* ``per-rank`` granularity (all-bank refresh, the HBM/Ramulator
  default): at every boundary ``k * tREFI`` (k >= 1) *all* banks of
  every channel refresh together; no service may *start* inside the
  blackout ``[k*tREFI, k*tREFI + tRFC)``, and the refresh precharges
  every row buffer (the next access to each bank pays a fresh
  activation).
* ``per-bank`` granularity (staggered/rolling refresh): bank ``b``
  refreshes in its own slice ``[k*tREFI + b*tRFC, k*tREFI +
  (b+1)*tRFC)``, so the channel keeps serving *other* banks while one
  refreshes — only a request targeting the refreshing bank (or an
  all-bank PIM/AB operation, which needs every bank) stalls.

Fences gate service *starts* only: an access in flight when a boundary
arrives completes normally (real controllers defer refresh behind an
open transaction), and its bank's row buffer is invalidated before the
next scheduling decision.  The sustained-bandwidth cost of per-rank
refresh is therefore ~``tRFC/tREFI``, the classic refresh-overhead
ratio, which ``exp_memsys`` checks against simulation.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

from ..arch.dram import DramMacroTiming

__all__ = [
    "BankAccess",
    "Bank",
    "latency_table",
    "ROW_POLICIES",
    "REFRESH_GRANULARITIES",
    "RefreshSchedule",
]

#: Row-buffer outcomes.
HIT = "hit"
MISS = "miss"
CONFLICT = "conflict"

#: Outcomes in the packed-code order used by the fast-path engine.
OUTCOMES = (HIT, MISS, CONFLICT)

#: Row-buffer management policies.
OPEN = "open"
CLOSED = "closed"
ROW_POLICIES = (OPEN, CLOSED)

#: Refresh granularities.
PER_RANK = "per-rank"
PER_BANK = "per-bank"
REFRESH_GRANULARITIES = (PER_RANK, PER_BANK)


@dataclasses.dataclass(frozen=True)
class RefreshSchedule:
    """Deterministic tREFI/tRFC blackout windows for one channel.

    All replay engines compute refresh from this one schedule, with the
    same float expressions, so blackout fences land bit-identically:

    * ``epoch(now)`` counts elapsed refresh boundaries (``k`` such that
      ``k * tREFI <= now``); crossing a boundary closes row buffers —
      all banks at once (per-rank), or bank ``b`` at its staggered
      slice start ``k*tREFI + b*tRFC`` (per-bank);
    * the ``*_fence`` methods return the earliest instant a service may
      begin: ``now`` outside a blackout, the blackout's end inside one.

    Parameters
    ----------
    trefi_ns, trfc_ns:
        Refresh interval and refresh cycle time (ns); ``trefi_ns > 0``.
    granularity:
        ``"per-rank"`` or ``"per-bank"``.
    n_banks:
        Banks per channel (sizes the per-bank stagger and the all-bank
        sweep window).
    """

    trefi_ns: float
    trfc_ns: float
    granularity: str
    n_banks: int

    def __post_init__(self) -> None:
        if not self.trefi_ns > 0:
            raise ValueError(
                f"trefi_ns must be > 0, got {self.trefi_ns}"
            )
        if not 0 <= self.trfc_ns < self.trefi_ns:
            raise ValueError(
                f"trfc_ns must satisfy 0 <= trfc_ns < trefi_ns, got "
                f"trfc_ns={self.trfc_ns} trefi_ns={self.trefi_ns}"
            )
        if self.granularity not in REFRESH_GRANULARITIES:
            raise ValueError(
                f"unknown refresh granularity {self.granularity!r}; "
                f"available: {REFRESH_GRANULARITIES}"
            )
        if self.n_banks < 1:
            raise ValueError("n_banks must be >= 1")
        if (
            self.granularity == PER_BANK
            and not self.n_banks * self.trfc_ns < self.trefi_ns
        ):
            raise ValueError(
                "per-bank refresh needs n_banks * trfc_ns < trefi_ns "
                f"(the rolling sweep must fit one interval), got "
                f"{self.n_banks} * {self.trfc_ns} vs {self.trefi_ns}"
            )

    # ------------------------------------------------------------------
    def epoch(self, now: float) -> int:
        """Refresh boundaries elapsed by ``now`` (0 before the first)."""
        return int(math.floor(now / self.trefi_ns))

    def bank_epoch(self, now: float, bank: int) -> int:
        """Refreshes *started* for ``bank`` by ``now`` (per-bank)."""
        return int(
            math.floor((now - bank * self.trfc_ns) / self.trefi_ns)
        )

    # ------------------------------------------------------------------
    def rank_fence(self, now: float) -> float:
        """Earliest service start at ``now`` under per-rank refresh."""
        epoch = self.epoch(now)
        if epoch >= 1:
            end = epoch * self.trefi_ns + self.trfc_ns
            if now < end:
                return end
        return now

    def bank_fence(self, now: float, bank: int) -> float:
        """Earliest service start for ``bank`` under per-bank refresh."""
        epoch = self.bank_epoch(now, bank)
        if epoch >= 1:
            begin = epoch * self.trefi_ns + bank * self.trfc_ns
            if begin <= now < begin + self.trfc_ns:
                return begin + self.trfc_ns
        return now

    def blackouts(
        self, until: float
    ) -> _t.Iterator[_t.Tuple[float, float, _t.Optional[int]]]:
        """Blackout windows ``(begin, end, bank)`` through ``until``.

        Enumerates the deterministic refresh windows whose start falls
        in ``(0, until]`` — the timeline exporter's refresh track.
        Per-rank windows cover every bank at once (``bank is None``);
        per-bank windows carry the refreshing bank's index.
        """
        if not until > 0 or math.isnan(until):
            return
        epochs = int(math.floor(until / self.trefi_ns))
        for k in range(1, epochs + 1):
            boundary = k * self.trefi_ns
            if self.granularity == PER_RANK:
                yield boundary, boundary + self.trfc_ns, None
                continue
            for bank in range(self.n_banks):
                begin = boundary + bank * self.trfc_ns
                if begin > until:
                    break
                yield begin, begin + self.trfc_ns, bank

    def all_bank_fence(self, now: float) -> float:
        """Earliest all-bank (PIM/AB) start under per-bank refresh.

        The staggered per-bank slices tile ``[k*tREFI, k*tREFI +
        n_banks*tRFC)`` contiguously, so an all-bank operation — which
        needs every bank simultaneously — waits out the whole sweep.
        """
        epoch = self.epoch(now)
        if epoch >= 1:
            end = (
                epoch * self.trefi_ns + self.n_banks * self.trfc_ns
            )
            if now < end:
                return end
        return now


def latency_table(
    timing: DramMacroTiming, precharge_ns: float = 0.0
) -> _t.Dict[str, float]:
    """Outcome -> access latency (ns) for one bank.

    The single source of the per-outcome service times: both the
    event-driven :meth:`Bank.access` state machine and the closed-form
    fast-path engine read from this table, so the two engines charge
    bit-identical latencies.
    """
    return {
        HIT: timing.page_access_ns,
        MISS: timing.row_access_ns + timing.page_access_ns,
        CONFLICT: (
            precharge_ns + timing.row_access_ns + timing.page_access_ns
        ),
    }


@dataclasses.dataclass(frozen=True)
class BankAccess:
    """Result of one bank access: latency and row-buffer outcome."""

    latency_ns: float
    outcome: str


class Bank:
    """Row-buffer state machine over :class:`DramMacroTiming`.

    Parameters
    ----------
    timing:
        Macro timing (paper defaults if omitted).
    precharge_ns:
        Explicit precharge cost charged on a row conflict before the new
        activation; 0 by default (folded into ``row_access_ns``).
    name:
        Label used in stats and repr.
    row_policy:
        ``"open"`` (default) keeps the accessed row latched until a
        conflict evicts it; ``"closed"`` auto-precharges after every
        access, so each access pays a fresh activation (counted as a
        miss) but never a conflict — the precharge itself overlaps the
        idle bus (the paper's conservative 20 ns row access already
        subsumes it, matching the open-policy convention).
    """

    __slots__ = (
        "timing", "precharge_ns", "name", "row_policy",
        "open_row", "hits", "misses", "conflicts", "_latency_ns",
    )

    def __init__(
        self,
        timing: _t.Optional[DramMacroTiming] = None,
        precharge_ns: float = 0.0,
        name: str = "bank",
        row_policy: str = OPEN,
    ) -> None:
        if precharge_ns < 0:
            raise ValueError("precharge_ns must be >= 0")
        if row_policy not in ROW_POLICIES:
            raise ValueError(
                f"unknown row_policy {row_policy!r}; available: "
                f"{ROW_POLICIES}"
            )
        self.timing = timing or DramMacroTiming()
        self.precharge_ns = float(precharge_ns)
        self.name = name
        self.row_policy = row_policy
        #: Outcome -> access latency, fixed by the timing parameters.
        #: Shared with the fast-path engine so both engines charge
        #: bit-identical service times.
        self._latency_ns = latency_table(self.timing, self.precharge_ns)
        #: Currently latched row, or ``None`` when the bank is closed.
        self.open_row: _t.Optional[int] = None
        self.hits = 0
        self.misses = 0
        self.conflicts = 0

    # ------------------------------------------------------------------
    def is_hit(self, row: int) -> bool:
        """Would accessing ``row`` hit the open row buffer?"""
        return self.open_row == row

    def access(self, row: int) -> BankAccess:
        """Access one page of ``row``, updating state and counters."""
        if self.row_policy == CLOSED:
            # Auto-precharge: the bank is always closed when the next
            # access arrives, so every access is a fresh activation.
            self.misses += 1
            return BankAccess(self._latency_ns[MISS], MISS)
        if self.open_row == row:
            self.hits += 1
            return BankAccess(self._latency_ns[HIT], HIT)
        if self.open_row is None:
            self.misses += 1
            self.open_row = row
            return BankAccess(self._latency_ns[MISS], MISS)
        self.conflicts += 1
        self.open_row = row
        return BankAccess(self._latency_ns[CONFLICT], CONFLICT)

    def precharge(self) -> None:
        """Close the row buffer (e.g. between PIM kernels or refresh)."""
        self.open_row = None

    def export_state(self) -> dict:
        """Row-buffer state + counters (bit-faithful round trip)."""
        return {
            "open_row": self.open_row,
            "hits": self.hits,
            "misses": self.misses,
            "conflicts": self.conflicts,
        }

    def load_state(self, state: _t.Mapping[str, _t.Any]) -> "Bank":
        """Restore the exact state captured by :meth:`export_state`."""
        open_row = state["open_row"]
        self.open_row = None if open_row is None else int(open_row)
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        self.conflicts = int(state["conflicts"])
        return self

    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses + self.conflicts

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses served from the open row buffer."""
        n = self.accesses
        return self.hits / n if n else float("nan")

    def __repr__(self) -> str:
        row = "closed" if self.open_row is None else f"row={self.open_row}"
        return (
            f"<Bank {self.name!r} {row} "
            f"h/m/c={self.hits}/{self.misses}/{self.conflicts}>"
        )
