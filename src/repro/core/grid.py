"""Shared labeled-grid container for parameter-sweep results.

Both studies produce families of curves over 2-D parameter grids;
:class:`SweepGrid` is the small, framework-free result type the experiment
harness renders to CSV, markdown tables and ASCII plots.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

__all__ = ["SweepGrid"]


@dataclasses.dataclass(frozen=True)
class SweepGrid:
    """Labeled 2-D sweep result.

    Attributes
    ----------
    name:
        Identifier (e.g. ``"figure5"``).
    row_label / col_label:
        Axis names (e.g. ``"n_nodes"`` / ``"lwp_fraction"``).
    rows / cols:
        Axis coordinate values.
    values:
        ``values[i, j]`` is the dependent variable at ``rows[i], cols[j]``.
    value_label:
        Name of the dependent variable.
    """

    name: str
    row_label: str
    rows: _t.Tuple[float, ...]
    col_label: str
    cols: _t.Tuple[float, ...]
    values: np.ndarray
    value_label: str

    def __post_init__(self) -> None:
        expected = (len(self.rows), len(self.cols))
        if self.values.shape != expected:
            raise ValueError(
                f"values shape {self.values.shape} != axes {expected}"
            )

    def row(self, row_value: float) -> np.ndarray:
        """The 1-D slice at the given row coordinate."""
        idx = self.rows.index(row_value)  # type: ignore[union-attr]
        return self.values[idx]

    def col(self, col_value: float) -> np.ndarray:
        """The 1-D slice at the given column coordinate."""
        idx = self.cols.index(col_value)  # type: ignore[union-attr]
        return self.values[:, idx]

    def to_rows(self) -> _t.List[dict]:
        """Long-format records, one per cell (for CSV export)."""
        out = []
        for i, r in enumerate(self.rows):
            for j, c in enumerate(self.cols):
                out.append(
                    {
                        self.row_label: r,
                        self.col_label: c,
                        self.value_label: float(self.values[i, j]),
                    }
                )
        return out

    def transposed(self) -> "SweepGrid":
        """Grid with rows and columns exchanged."""
        return SweepGrid(
            name=self.name,
            row_label=self.col_label,
            rows=self.cols,
            col_label=self.row_label,
            cols=self.rows,
            values=self.values.T.copy(),
            value_label=self.value_label,
        )
