"""repro.core — the paper's primary contribution.

Two statistical parametric studies of advanced PIM architecture:

* :mod:`repro.core.hwlw` — §3, partitioning work between a cache-based
  heavyweight host processor (HWP) and an array of lightweight PIM
  processors (LWPs), as a queuing simulation plus the closed-form model
  that exposes the break-even node count ``NB``.
* :mod:`repro.core.parcels` — §4, latency hiding through parcel-driven
  split-transaction processing versus blocking message passing.

Shared parameter sets live in :mod:`repro.core.params`.
"""

from .params import ParcelParams, Table1Params

__all__ = ["Table1Params", "ParcelParams"]
