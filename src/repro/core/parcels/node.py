"""Node models for the parcel latency-hiding study (paper §4, Fig. 10).

Both systems share the workload statistics ("clock rate, peak instruction
issue rate, instruction mix, system wide latency ... and the degree of
remote accesses" are identical, per the paper):

* every operation issues in one cycle;
* a fraction ``ls_mix`` of operations are memory accesses, served in
  ``memory_cycles``;
* a fraction ``remote_fraction`` of accesses target a uniformly random
  *other* node.

Execution is simulated in *blocks*: the compute operations and local
accesses between two consecutive remote accesses are batched into one
sampled unit (statistically exact — run lengths are geometric, so the
batch is negative-binomial), keeping the event count proportional to the
number of *remote* transactions.

Each processor is always in one of the paper's three states:

* ``busy`` — performing useful operations (plus message/parcel overheads);
* ``memory`` — performing local memory access (its own, or on behalf of an
  incident parcel in the test system);
* ``idle`` — a control processor waiting for its outstanding reply, or a
  test processor with no ready parcel context and no incident parcels.

The **control** node (:class:`MessagePassingNode`) has one thread and
blocks for the full round trip (``2·latency + memory_cycles``) on every
remote access.  The **test** node (:class:`SplitTransactionNode`) runs
``parallelism`` parcel contexts; a context that issues a remote access
suspends (paying a context-switch) and the node's processor moves on to
the next ready context or incident parcel.  Incident parcels consume the
target processor ("an execution site processes incident parcel requests,
performs the specified actions locally"): receive overhead, the action's
memory accesses, and the reply send overhead.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ...desim import Resource, Simulator, StateTimer, Store
from ..params import ParcelParams
from .actions import ActionRegistry, default_registry
from .network import Network
from .parcel import Parcel, ParcelKind

__all__ = [
    "BUSY",
    "MEMORY",
    "IDLE",
    "Block",
    "BlockSampler",
    "NodeCpu",
    "NodeStats",
    "MessagePassingNode",
    "SplitTransactionNode",
]

BUSY = "busy"
MEMORY = "memory"
IDLE = "idle"


@dataclasses.dataclass(frozen=True)
class Block:
    """One batched unit of local work, possibly ending in a remote access.

    ``compute_ops`` operations (1 cycle each) and ``local_accesses``
    local memory accesses precede the remote access (if ``remote``).
    Counts are floats so deterministic (expected-value) mode can use
    fractional values.
    """

    compute_ops: float
    local_accesses: float
    remote: bool


class BlockSampler:
    """Draws :class:`Block` units matching the workload statistics.

    Stochastic mode: the number of accesses until (and including) the
    remote one is Geometric(``remote_fraction``); compute operations
    between accesses follow from the instruction mix via a
    negative-binomial draw.  Deterministic mode uses expected values and
    always ends blocks with a remote access (when ``remote_fraction > 0``).
    """

    def __init__(
        self,
        params: ParcelParams,
        rng: _t.Optional[np.random.Generator],
        stochastic: bool = True,
    ) -> None:
        self.mix = params.ls_mix
        self.remote_fraction = params.effective_remote_fraction
        self.max_block = params.max_block_accesses
        self.rng = rng
        self.stochastic = stochastic
        if stochastic and rng is None:
            raise ValueError("stochastic sampling requires an rng")

    def sample(self) -> Block:
        """Draw the next block."""
        r = self.remote_fraction
        if self.stochastic:
            rng = _t.cast(np.random.Generator, self.rng)
            if r > 0.0:
                accesses = int(rng.geometric(r))
                if accesses > self.max_block:
                    accesses, remote = self.max_block, False
                else:
                    remote = True
            else:
                accesses, remote = self.max_block, False
            local = accesses - 1 if remote else accesses
            if self.mix >= 1.0:
                compute = 0.0
            else:
                compute = float(rng.negative_binomial(accesses, self.mix))
            return Block(compute, float(local), remote)
        # deterministic expectations
        if r > 0.0 and (1.0 / r) <= float(self.max_block):
            accesses = 1.0 / r
            remote = True
            local = accesses - 1.0
        else:
            accesses = float(self.max_block)
            remote = False
            local = accesses
        compute = accesses * (1.0 - self.mix) / self.mix
        return Block(compute, local, remote)


class NodeCpu:
    """A node's processor: unit-capacity server + three-state timer.

    All execution on a node flows through :meth:`acquire` /
    :meth:`release`; the release hook records the ``idle`` state whenever
    no ready work holds the processor, giving Fig. 12's idle-time signal
    exactly.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.resource = Resource(sim, 1, name)
        self.timer = StateTimer(IDLE, sim.now, name)

    def acquire(self):
        """Request the processor (yieldable event)."""
        return self.resource.request()

    def release(self, request) -> None:
        """Release; records ``idle`` if nobody else is ready to run."""
        self.resource.release(request)
        if self.resource.count == 0:
            self.timer.transition(IDLE, self.sim.now)

    def set_state(self, state: str) -> None:
        """Record the holder's current activity (busy/memory)."""
        self.timer.transition(state, self.sim.now)

    def idle_fraction(self, now: float) -> float:
        return self.timer.fraction(IDLE, now)


@dataclasses.dataclass
class NodeStats:
    """Work and state accounting for one node."""

    useful_ops: float = 0.0
    local_accesses: float = 0.0
    serviced_accesses: float = 0.0
    remote_requests: int = 0
    parcels_serviced: int = 0

    @property
    def total_work(self) -> float:
        """Useful ops + memory accesses completed at this node."""
        return self.useful_ops + self.local_accesses + self.serviced_accesses


class MessagePassingNode:
    """Control-system node: one blocking thread (Fig. 10, left).

    Remote accesses cost ``send_overhead`` (busy), then a full round trip
    ``2·latency + memory_cycles`` spent *waiting* (the idle state), then
    ``receive_overhead`` (busy).  The remote service time is folded into
    the flat delay, exactly as the paper's fixed-delay latency model; no
    remote resources are consumed.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: ParcelParams,
        rng: _t.Optional[np.random.Generator],
        stochastic: bool = True,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.sampler = BlockSampler(params, rng, stochastic)
        self.timer = StateTimer(IDLE, sim.now, f"mp.{node_id}")
        self.stats = NodeStats()

    def start(self) -> None:
        """Spawn the node's single thread."""
        self.sim.process(self._thread(), name=f"mp.{self.node_id}.thread")

    def _thread(self):
        sim = self.sim
        p = self.params
        round_trip = p.round_trip_cycles + p.memory_cycles
        while True:
            block = self.sampler.sample()
            if block.compute_ops > 0:
                self.timer.transition(BUSY, sim.now)
                yield sim.timeout(block.compute_ops)
                self.stats.useful_ops += block.compute_ops
            if block.local_accesses > 0:
                self.timer.transition(MEMORY, sim.now)
                yield sim.timeout(block.local_accesses * p.memory_cycles)
                self.stats.local_accesses += block.local_accesses
            if block.remote:
                self.timer.transition(BUSY, sim.now)
                yield sim.timeout(p.send_overhead_cycles)
                self.timer.transition(IDLE, sim.now)  # waiting for reply
                yield sim.timeout(round_trip)
                self.timer.transition(BUSY, sim.now)
                yield sim.timeout(p.receive_overhead_cycles)
                self.stats.remote_requests += 1
                # the access completed remotely on this thread's behalf
                self.stats.local_accesses += 1.0

    def idle_fraction(self, now: float) -> float:
        return self.timer.fraction(IDLE, now)

    def state_fractions(self, now: float) -> _t.Dict[str, float]:
        totals = self.timer.totals(now)
        span = sum(totals.values())
        return {k: v / span for k, v in totals.items()} if span else {}


class SplitTransactionNode:
    """Test-system node: parcel-driven split-transaction processing.

    ``parallelism`` contexts share the node processor; a dispatcher drains
    the network mailbox, resuming suspended contexts on replies and
    spawning service handlers for incident requests.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: ParcelParams,
        network: Network,
        rng_block: _t.Optional[np.random.Generator],
        rng_dest: _t.Optional[np.random.Generator],
        stochastic: bool = True,
        actions: _t.Optional[ActionRegistry] = None,
        request_action: str = "load",
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.network = network
        self.sampler = BlockSampler(params, rng_block, stochastic)
        self.rng_dest = rng_dest
        self.stochastic = stochastic
        self.actions = actions or default_registry()
        self.request_action = request_action
        self.cpu = NodeCpu(sim, f"pt.{node_id}.cpu")
        self.stats = NodeStats()
        self._pending: _t.Dict[int, object] = {}
        self._rr_next = (node_id + 1) % max(params.n_nodes, 1)

    # ------------------------------------------------------------------
    @property
    def mailbox(self) -> Store:
        return self.network.mailbox(self.node_id)

    def start(self) -> None:
        """Spawn the dispatcher and the parcel contexts."""
        self.sim.process(
            self._dispatcher(), name=f"pt.{self.node_id}.dispatch"
        )
        for ctx in range(self.params.parallelism):
            self.sim.process(
                self._context(ctx), name=f"pt.{self.node_id}.ctx{ctx}"
            )

    # ------------------------------------------------------------------
    def _pick_destination(self) -> int:
        n = self.network.n_nodes
        if n <= 1:
            raise RuntimeError("remote access with a single node")
        if self.stochastic:
            rng = _t.cast(np.random.Generator, self.rng_dest)
            dest = int(rng.integers(0, n - 1))
            return dest if dest < self.node_id else dest + 1
        dest = self._rr_next
        self._rr_next = (self._rr_next + 1) % n
        if self._rr_next == self.node_id:
            self._rr_next = (self._rr_next + 1) % n
        return dest if dest != self.node_id else (dest + 1) % n

    def _context(self, ctx: int):
        sim = self.sim
        p = self.params
        cpu = self.cpu
        while True:
            block = self.sampler.sample()
            req = cpu.acquire()
            yield req
            if block.compute_ops > 0:
                cpu.set_state(BUSY)
                yield sim.timeout(block.compute_ops)
                self.stats.useful_ops += block.compute_ops
            if block.local_accesses > 0:
                cpu.set_state(MEMORY)
                yield sim.timeout(block.local_accesses * p.memory_cycles)
                self.stats.local_accesses += block.local_accesses
            if not block.remote:
                cpu.release(req)
                continue
            # compose + inject the request parcel, then switch away
            cpu.set_state(BUSY)
            yield sim.timeout(
                p.send_overhead_cycles + p.context_switch_cycles
            )
            parcel = Parcel.request(
                self.node_id,
                self._pick_destination(),
                action=self.request_action,
            )
            reply_event = sim.event()
            assert parcel.continuation is not None
            self._pending[parcel.continuation.transaction_id] = reply_event
            self.network.send(parcel)
            self.stats.remote_requests += 1
            cpu.release(req)
            yield reply_event  # split transaction: suspended, CPU free
            req = cpu.acquire()
            yield req
            cpu.set_state(BUSY)
            yield sim.timeout(p.receive_overhead_cycles)
            cpu.release(req)

    def _dispatcher(self):
        sim = self.sim
        while True:
            parcel = yield self.mailbox.get()
            assert isinstance(parcel, Parcel)
            if parcel.kind == ParcelKind.REPLY:
                assert parcel.continuation is not None
                event = self._pending.pop(
                    parcel.continuation.transaction_id, None
                )
                if event is None:
                    raise RuntimeError(
                        f"node {self.node_id}: reply for unknown "
                        f"transaction {parcel.continuation.transaction_id}"
                    )
                event.succeed(parcel)  # type: ignore[attr-defined]
            else:
                sim.process(
                    self._service(parcel),
                    name=f"pt.{self.node_id}.svc",
                )

    def _service(self, parcel: Parcel):
        """Handle one incident request parcel on the node processor."""
        sim = self.sim
        p = self.params
        cpu = self.cpu
        spec = self.actions[parcel.action]
        req = cpu.acquire()
        yield req
        cpu.set_state(BUSY)
        yield sim.timeout(p.receive_overhead_cycles)
        if spec.compute_cycles > 0:
            yield sim.timeout(spec.compute_cycles)
            self.stats.useful_ops += spec.compute_cycles
        if spec.memory_accesses > 0:
            cpu.set_state(MEMORY)
            yield sim.timeout(spec.memory_accesses * p.memory_cycles)
            self.stats.serviced_accesses += spec.memory_accesses
        if parcel.expects_reply:
            cpu.set_state(BUSY)
            yield sim.timeout(p.send_overhead_cycles)
            self.network.send(parcel.reply())
        self.stats.parcels_serviced += 1
        cpu.release(req)

    # ------------------------------------------------------------------
    def idle_fraction(self, now: float) -> float:
        return self.cpu.idle_fraction(now)

    def state_fractions(self, now: float) -> _t.Dict[str, float]:
        totals = self.cpu.timer.totals(now)
        span = sum(totals.values())
        return {k: v / span for k, v in totals.items()} if span else {}
