"""Interconnect models for parcel transport.

The paper's study treats system-wide latency as "flat (fixed delay)":
every parcel experiences the same one-way latency regardless of endpoints
or load.  :class:`FlatNetwork` implements exactly that.  For ablations we
also provide :class:`LinkContentionNetwork`, which adds per-destination
bandwidth limits (an ingress link modeled as a FIFO server), showing how
the flat-latency idealization behaves once contention appears.

A network delivers parcels into per-node input :class:`~repro.desim.Store`
mailboxes and keeps aggregate statistics (parcels sent, in flight,
delivered, latency tally).
"""

from __future__ import annotations

import typing as _t

from ...desim import Resource, Simulator, Store, Tally, TimeWeighted
from .parcel import Parcel

__all__ = ["Network", "FlatNetwork", "LinkContentionNetwork"]


class Network:
    """Base class: mailbox registry + delivery statistics."""

    def __init__(self, sim: Simulator, n_nodes: int, name: str = "net") -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.sim = sim
        self.name = name
        self.mailboxes: _t.List[Store] = [
            Store(sim, name=f"{name}.in[{i}]") for i in range(n_nodes)
        ]
        self.parcels_sent = 0
        self.parcels_delivered = 0
        self.in_flight = TimeWeighted(f"{name}.inflight", 0.0, sim.now)
        self.delivery_latency = Tally(f"{name}.latency")

    @property
    def n_nodes(self) -> int:
        return len(self.mailboxes)

    def mailbox(self, node: int) -> Store:
        """The input mailbox of ``node``."""
        return self.mailboxes[node]

    def send(self, parcel: Parcel) -> None:
        """Inject ``parcel``; it arrives at its destination's mailbox later."""
        if not 0 <= parcel.destination < self.n_nodes:
            raise ValueError(
                f"destination {parcel.destination} outside [0, {self.n_nodes})"
            )
        self.parcels_sent += 1
        self.in_flight.add(1.0, self.sim.now)
        stamped = parcel.with_injection_time(self.sim.now)
        self.sim.trace(
            "parcel.send",
            src=parcel.source,
            dst=parcel.destination,
            parcel_kind=parcel.kind,
        )
        self._transport(stamped)

    def _transport(self, parcel: Parcel) -> None:
        raise NotImplementedError

    def _deliver(self, parcel: Parcel) -> None:
        self.parcels_delivered += 1
        self.in_flight.add(-1.0, self.sim.now)
        if parcel.injected_at is not None:
            self.delivery_latency.record(self.sim.now - parcel.injected_at)
        self.sim.trace(
            "parcel.deliver",
            src=parcel.source,
            dst=parcel.destination,
            parcel_kind=parcel.kind,
        )
        self.mailboxes[parcel.destination].put(parcel)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} nodes={self.n_nodes} "
            f"sent={self.parcels_sent} delivered={self.parcels_delivered}>"
        )


class FlatNetwork(Network):
    """The paper's interconnect: fixed one-way delay, infinite bandwidth.

    Parameters
    ----------
    latency_cycles:
        One-way delay applied to every parcel.
    """

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        latency_cycles: float,
        name: str = "flatnet",
    ) -> None:
        if latency_cycles < 0:
            raise ValueError("latency_cycles must be non-negative")
        super().__init__(sim, n_nodes, name)
        self.latency_cycles = float(latency_cycles)

    def _transport(self, parcel: Parcel) -> None:
        def flight():
            yield self.sim.timeout(self.latency_cycles)
            self._deliver(parcel)

        self.sim.process(flight(), name=f"{self.name}.flight")


class LinkContentionNetwork(Network):
    """Flat propagation delay plus a bandwidth-limited ingress per node.

    Each destination has an ingress link serving one parcel every
    ``cycles_per_word × size_words`` cycles, FIFO.  Under uniform light
    load it reduces to :class:`FlatNetwork`; under hot-spot traffic the
    queue grows, which is the contention effect the flat model ignores —
    used by the ablation experiments.
    """

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        latency_cycles: float,
        cycles_per_word: float = 1.0,
        name: str = "linknet",
    ) -> None:
        if latency_cycles < 0:
            raise ValueError("latency_cycles must be non-negative")
        if cycles_per_word < 0:
            raise ValueError("cycles_per_word must be non-negative")
        super().__init__(sim, n_nodes, name)
        self.latency_cycles = float(latency_cycles)
        self.cycles_per_word = float(cycles_per_word)
        self.links = [
            Resource(sim, 1, f"{name}.link[{i}]") for i in range(n_nodes)
        ]

    def _transport(self, parcel: Parcel) -> None:
        def flight():
            yield self.sim.timeout(self.latency_cycles)
            link = self.links[parcel.destination]
            with link.request() as req:
                yield req
                yield self.sim.timeout(
                    self.cycles_per_word * parcel.size_words
                )
            self._deliver(parcel)

        self.sim.process(flight(), name=f"{self.name}.flight")
