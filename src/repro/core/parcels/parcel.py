"""Parcel (PARallel Control ELement) structures — paper Fig. 8.

A parcel is a memory-borne message specifying an *action* to perform on a
datum or object in another node's memory: from simple reads/writes through
atomic arithmetic memory operations to remote method invocations.  The
structure mirrors Fig. 8:

* an **outer wrapper** used by the interconnect transport layer (source /
  destination routing, size, injection timestamp);
* an **inner message**: destination data virtual address, action specifier,
  operand values, and a continuation (where the result, if any, should go).

The statistical systems of §4 only need the routing and continuation
machinery plus a service-cost model per action; the functional ISA
simulator (:mod:`repro.isa`) executes the same actions against real memory.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

__all__ = ["ParcelKind", "Parcel", "Continuation", "next_transaction_id"]

_transaction_counter = itertools.count(1)


def next_transaction_id() -> int:
    """Globally unique (per-interpreter) transaction identifier."""
    return next(_transaction_counter)


class ParcelKind:
    """Parcel categories used by the split-transaction protocol."""

    REQUEST = "request"
    REPLY = "reply"


@dataclasses.dataclass(frozen=True)
class Continuation:
    """Where a parcel's result should be delivered.

    A reply parcel is routed to ``node`` and matched to the suspended
    context via ``transaction_id``; a ``None`` continuation means the
    action is one-way (no response expected — the paper notes a return
    value "is not always necessary").
    """

    node: int
    transaction_id: int

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("continuation node must be non-negative")


@dataclasses.dataclass(frozen=True)
class Parcel:
    """One parcel: transport wrapper plus action payload (Fig. 8).

    Attributes
    ----------
    kind:
        :data:`ParcelKind.REQUEST` or :data:`ParcelKind.REPLY`.
    source / destination:
        Node ids for the transport layer (the outer wrapper).
    target_address:
        Destination data virtual address the action applies to.
    action:
        Action specifier — a name resolved against the action registry
        (:mod:`repro.core.parcels.actions`), or a code-block pointer in
        the functional simulator.
    operands:
        Additional operand values.
    continuation:
        Reply routing; ``None`` for one-way parcels.
    injected_at:
        Simulation time the parcel entered the network (set by the
        transport; ``None`` before injection).
    size_words:
        Payload size in words; used by contention-modeling networks.
    """

    kind: str
    source: int
    destination: int
    target_address: int = 0
    action: str = "load"
    operands: _t.Tuple[float, ...] = ()
    continuation: _t.Optional[Continuation] = None
    injected_at: _t.Optional[float] = None
    size_words: int = 2

    def __post_init__(self) -> None:
        if self.kind not in (ParcelKind.REQUEST, ParcelKind.REPLY):
            raise ValueError(f"unknown parcel kind {self.kind!r}")
        if self.source < 0 or self.destination < 0:
            raise ValueError("node ids must be non-negative")
        if self.size_words < 1:
            raise ValueError("size_words must be >= 1")

    @property
    def expects_reply(self) -> bool:
        """Whether a response parcel must be generated."""
        return self.kind == ParcelKind.REQUEST and self.continuation is not None

    def reply(self, operands: _t.Tuple[float, ...] = ()) -> "Parcel":
        """Build the response parcel for this request.

        Routed back to the continuation node, carrying the same
        transaction id so the suspended context can be matched.
        """
        if self.continuation is None:
            raise ValueError(f"{self!r} has no continuation to reply to")
        return Parcel(
            kind=ParcelKind.REPLY,
            source=self.destination,
            destination=self.continuation.node,
            target_address=self.target_address,
            action=self.action,
            operands=operands,
            continuation=self.continuation,
        )

    def with_injection_time(self, now: float) -> "Parcel":
        """Copy stamped with the network injection time."""
        return dataclasses.replace(self, injected_at=now)

    @staticmethod
    def request(
        source: int,
        destination: int,
        *,
        target_address: int = 0,
        action: str = "load",
        operands: _t.Tuple[float, ...] = (),
        want_reply: bool = True,
    ) -> "Parcel":
        """Convenience constructor for request parcels.

        Allocates a fresh transaction id when ``want_reply`` is set.
        """
        continuation = (
            Continuation(node=source, transaction_id=next_transaction_id())
            if want_reply
            else None
        )
        return Parcel(
            kind=ParcelKind.REQUEST,
            source=source,
            destination=destination,
            target_address=target_address,
            action=action,
            operands=operands,
            continuation=continuation,
        )
