"""repro.core.parcels — the parcel latency-hiding study (paper §4).

Contents:

* :mod:`~repro.core.parcels.parcel` — parcel structures (Fig. 8);
* :mod:`~repro.core.parcels.actions` — action registry and cost models;
* :mod:`~repro.core.parcels.network` — flat-latency (and contention)
  interconnects;
* :mod:`~repro.core.parcels.node` — message-passing and split-transaction
  node models (Fig. 10);
* :mod:`~repro.core.parcels.systems` — paired system simulations;
* :mod:`~repro.core.parcels.analytic` — Saavedra-Barrera-style closed
  forms;
* :mod:`~repro.core.parcels.sweep` — sweeps for Figs. 11 and 12.
"""

from .actions import (
    ActionRegistry,
    ActionSpec,
    DEFAULT_ACTIONS,
    default_registry,
)
from .analytic import (
    control_work_rate,
    multithreading_efficiency,
    parcel_ratio_estimate,
    saturation_parallelism,
    test_work_rate_estimate,
)
from .network import FlatNetwork, LinkContentionNetwork, Network
from .node import (
    BUSY,
    Block,
    BlockSampler,
    IDLE,
    MEMORY,
    MessagePassingNode,
    NodeCpu,
    NodeStats,
    SplitTransactionNode,
)
from .parcel import Continuation, Parcel, ParcelKind, next_transaction_id
from .sweep import (
    Figure11Result,
    Figure12Result,
    PAPER_LATENCIES,
    PAPER_NODE_COUNTS_FIG12,
    PAPER_PARALLELISM_LEVELS,
    PAPER_REMOTE_FRACTIONS,
    figure11_sweep,
    figure12_sweep,
    overhead_ablation_sweep,
)
from .systems import (
    LatencyHidingComparison,
    SystemResult,
    compare_systems,
    simulate_message_passing,
    simulate_parcels,
)

__all__ = [
    "ActionRegistry",
    "ActionSpec",
    "DEFAULT_ACTIONS",
    "default_registry",
    "control_work_rate",
    "multithreading_efficiency",
    "parcel_ratio_estimate",
    "saturation_parallelism",
    "test_work_rate_estimate",
    "FlatNetwork",
    "LinkContentionNetwork",
    "Network",
    "BUSY",
    "IDLE",
    "MEMORY",
    "Block",
    "BlockSampler",
    "MessagePassingNode",
    "NodeCpu",
    "NodeStats",
    "SplitTransactionNode",
    "Continuation",
    "Parcel",
    "ParcelKind",
    "next_transaction_id",
    "Figure11Result",
    "Figure12Result",
    "PAPER_LATENCIES",
    "PAPER_NODE_COUNTS_FIG12",
    "PAPER_PARALLELISM_LEVELS",
    "PAPER_REMOTE_FRACTIONS",
    "figure11_sweep",
    "figure12_sweep",
    "overhead_ablation_sweep",
    "LatencyHidingComparison",
    "SystemResult",
    "compare_systems",
    "simulate_message_passing",
    "simulate_parcels",
]
