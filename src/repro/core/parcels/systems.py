"""Whole-system simulations for the parcel study (paper §4.2–4.3).

Builds the two queuing models of Fig. 10 — the blocking message-passing
*control* system and the parcel split-transaction *test* system — runs each
for a fixed simulated horizon, and measures "the number of useful
operations and local memory access operations, representing the total work
done" plus per-state processor time, exactly the dependent variables of
Figs. 11 and 12.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ...desim import RandomStreams, Simulator
from ..params import ParcelParams
from .network import FlatNetwork, Network
from .node import MessagePassingNode, SplitTransactionNode, BUSY, IDLE, MEMORY

__all__ = [
    "SystemResult",
    "LatencyHidingComparison",
    "simulate_message_passing",
    "simulate_parcels",
    "compare_systems",
]


@dataclasses.dataclass(frozen=True)
class SystemResult:
    """Aggregate measurements of one system run.

    Attributes
    ----------
    system:
        ``"control"`` (message passing) or ``"test"`` (parcels).
    params / horizon_cycles:
        The configuration simulated.
    useful_ops / local_accesses / serviced_accesses:
        Work components summed over nodes.  ``serviced_accesses`` is zero
        for the control system (remote service is folded into its flat
        round-trip delay).
    idle_fraction / busy_fraction / memory_fraction:
        Mean per-node state shares over the horizon.
    per_node_idle:
        Idle fraction of each node (spread diagnostics).
    parcels_sent:
        Network traffic (test system only; control uses fixed delays).
    """

    system: str
    params: ParcelParams
    horizon_cycles: float
    useful_ops: float
    local_accesses: float
    serviced_accesses: float
    remote_requests: int
    idle_fraction: float
    busy_fraction: float
    memory_fraction: float
    per_node_idle: _t.Tuple[float, ...]
    parcels_sent: int

    @property
    def total_work(self) -> float:
        """Useful operations + memory accesses completed in the horizon."""
        return self.useful_ops + self.local_accesses + self.serviced_accesses

    @property
    def work_rate(self) -> float:
        """Work per cycle per node — the throughput figure of merit."""
        return self.total_work / (self.horizon_cycles * self.params.n_nodes)

    def to_dict(self) -> dict:
        return {
            "system": self.system,
            "n_nodes": self.params.n_nodes,
            "parallelism": self.params.parallelism,
            "remote_fraction": self.params.remote_fraction,
            "latency_cycles": self.params.latency_cycles,
            "horizon_cycles": self.horizon_cycles,
            "total_work": self.total_work,
            "work_rate": self.work_rate,
            "idle_fraction": self.idle_fraction,
            "busy_fraction": self.busy_fraction,
            "memory_fraction": self.memory_fraction,
            "parcels_sent": self.parcels_sent,
        }


@dataclasses.dataclass(frozen=True)
class LatencyHidingComparison:
    """Paired test/control runs and their Fig. 11 ratio."""

    test: SystemResult
    control: SystemResult

    @property
    def ratio(self) -> float:
        """Operations ratio: test-system work over control-system work."""
        return self.test.total_work / self.control.total_work

    def to_dict(self) -> dict:
        return {
            "ratio": self.ratio,
            "test_work": self.test.total_work,
            "control_work": self.control.total_work,
            "test_idle": self.test.idle_fraction,
            "control_idle": self.control.idle_fraction,
        }


def _mean_state_fractions(
    nodes: _t.Sequence[object], now: float
) -> _t.Tuple[float, float, float, _t.Tuple[float, ...]]:
    busy = []
    memory = []
    idle = []
    for node in nodes:
        fractions = node.state_fractions(now)  # type: ignore[attr-defined]
        busy.append(fractions.get(BUSY, 0.0))
        memory.append(fractions.get(MEMORY, 0.0))
        idle.append(fractions.get(IDLE, 0.0))
    return (
        float(np.mean(busy)),
        float(np.mean(memory)),
        float(np.mean(idle)),
        tuple(idle),
    )


def simulate_message_passing(
    params: _t.Optional[ParcelParams] = None,
    horizon_cycles: float = 50_000.0,
    seed: int = 0,
    stochastic: bool = True,
) -> SystemResult:
    """Run the blocking message-passing control system for a horizon.

    Examples
    --------
    >>> r = simulate_message_passing(ParcelParams(n_nodes=2), 5_000.0)
    >>> r.total_work > 0
    True
    """
    params = params or ParcelParams()
    if horizon_cycles <= 0:
        raise ValueError("horizon_cycles must be positive")
    sim = Simulator()
    streams = RandomStreams(seed)
    nodes = [
        MessagePassingNode(
            sim,
            i,
            params,
            streams.stream(f"mp.{i}.block") if stochastic else None,
            stochastic,
        )
        for i in range(params.n_nodes)
    ]
    for node in nodes:
        node.start()
    sim.run(until=horizon_cycles)

    busy, memory, idle, per_node = _mean_state_fractions(nodes, sim.now)
    return SystemResult(
        system="control",
        params=params,
        horizon_cycles=horizon_cycles,
        useful_ops=sum(n.stats.useful_ops for n in nodes),
        local_accesses=sum(n.stats.local_accesses for n in nodes),
        serviced_accesses=0.0,
        remote_requests=sum(n.stats.remote_requests for n in nodes),
        idle_fraction=idle,
        busy_fraction=busy,
        memory_fraction=memory,
        per_node_idle=per_node,
        parcels_sent=0,
    )


def simulate_parcels(
    params: _t.Optional[ParcelParams] = None,
    horizon_cycles: float = 50_000.0,
    seed: int = 0,
    stochastic: bool = True,
    network_factory: _t.Optional[
        _t.Callable[[Simulator, ParcelParams], Network]
    ] = None,
    request_action: str = "load",
) -> SystemResult:
    """Run the parcel split-transaction test system for a horizon.

    Parameters
    ----------
    network_factory:
        Optional replacement interconnect (defaults to the paper's
        flat-latency network); signature ``(sim, params) -> Network``.
    request_action:
        Parcel action issued for remote accesses — the paper's parcels
        "range from simple memory reads and writes, through atomic
        arithmetic memory operations, to remote method invocations";
        any name in the default action registry (``load``, ``amo.add``,
        ``method``, …) selects the corresponding service cost.

    Examples
    --------
    >>> r = simulate_parcels(ParcelParams(n_nodes=2, parallelism=4), 5_000.0)
    >>> 0.0 <= r.idle_fraction <= 1.0
    True
    """
    params = params or ParcelParams()
    if horizon_cycles <= 0:
        raise ValueError("horizon_cycles must be positive")
    sim = Simulator()
    streams = RandomStreams(seed)
    if network_factory is None:
        network: Network = FlatNetwork(
            sim, params.n_nodes, params.latency_cycles
        )
    else:
        network = network_factory(sim, params)
    nodes = [
        SplitTransactionNode(
            sim,
            i,
            params,
            network,
            streams.stream(f"pt.{i}.block") if stochastic else None,
            streams.stream(f"pt.{i}.dest") if stochastic else None,
            stochastic,
            request_action=request_action,
        )
        for i in range(params.n_nodes)
    ]
    for node in nodes:
        node.start()
    sim.run(until=horizon_cycles)

    busy, memory, idle, per_node = _mean_state_fractions(nodes, sim.now)
    return SystemResult(
        system="test",
        params=params,
        horizon_cycles=horizon_cycles,
        useful_ops=sum(n.stats.useful_ops for n in nodes),
        local_accesses=sum(n.stats.local_accesses for n in nodes),
        serviced_accesses=sum(n.stats.serviced_accesses for n in nodes),
        remote_requests=sum(n.stats.remote_requests for n in nodes),
        idle_fraction=idle,
        busy_fraction=busy,
        memory_fraction=memory,
        per_node_idle=per_node,
        parcels_sent=network.parcels_sent,
    )


def compare_systems(
    params: _t.Optional[ParcelParams] = None,
    horizon_cycles: float = 50_000.0,
    seed: int = 0,
    stochastic: bool = True,
) -> LatencyHidingComparison:
    """Run both systems on identical parameters and pair the results.

    This is Fig. 11's primitive: "The experiments of both systems are run
    for the same amount of simulated time and the number of useful
    operations and local memory access operations ... are measured and
    compared."
    """
    params = params or ParcelParams()
    test = simulate_parcels(params, horizon_cycles, seed, stochastic)
    control = simulate_message_passing(
        params, horizon_cycles, seed, stochastic
    )
    return LatencyHidingComparison(test=test, control=control)
