"""Closed-form cross-checks for the parcel study.

The paper grounds its parcel experiments in prior multithreading analysis
(Saavedra-Barrera, Culler & von Eicken [27]): a processor with ``P``
contexts, run length ``R`` between remote requests, context-switch cost
``C`` and remote latency ``L`` has efficiency

.. math::

    \\epsilon(P) = \\begin{cases}
        \\dfrac{P\\,R}{R + C + L}           & P < P_{sat} \\\\[1ex]
        \\dfrac{R}{R + C}                   & P \\ge P_{sat}
    \\end{cases}
    \\qquad P_{sat} = \\frac{R + C + L}{R + C}

:func:`multithreading_efficiency` implements that classic model;
:func:`parcel_ratio_estimate` specializes it to this package's parcel
parameterization (instruction mix, remote fraction, overheads, incident-
parcel service load) to predict Fig. 11's test/control ratio without
simulation.  The estimate ignores queueing at node processors, so it is an
optimistic bound that the DES approaches from below; tests assert
agreement within a tolerance band.

All functions broadcast over NumPy arrays.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..params import ParcelParams

__all__ = [
    "multithreading_efficiency",
    "saturation_parallelism",
    "control_work_rate",
    "test_work_rate_estimate",
    "parcel_ratio_estimate",
]

ArrayLike = _t.Union[float, _t.Sequence[float], np.ndarray]


def saturation_parallelism(
    run_cycles: ArrayLike,
    latency_cycles: ArrayLike,
    switch_cycles: ArrayLike = 0.0,
) -> np.ndarray:
    """Contexts needed to fully hide ``latency_cycles``.

    ``P_sat = (R + C + L) / (R + C)`` — one context runs while the others'
    requests are in flight.
    """
    r = np.asarray(run_cycles, dtype=float)
    l = np.asarray(latency_cycles, dtype=float)
    c = np.asarray(switch_cycles, dtype=float)
    if np.any(r <= 0):
        raise ValueError("run_cycles must be positive")
    if np.any(l < 0) or np.any(c < 0):
        raise ValueError("latency and switch cycles must be non-negative")
    return (r + c + l) / (r + c)


def multithreading_efficiency(
    parallelism: ArrayLike,
    run_cycles: ArrayLike,
    latency_cycles: ArrayLike,
    switch_cycles: ArrayLike = 0.0,
) -> np.ndarray:
    """Processor efficiency under the Saavedra-Barrera model.

    Parameters broadcast; returns values in (0, 1].

    Examples
    --------
    >>> float(multithreading_efficiency(1, 10.0, 90.0, 0.0))
    0.1
    >>> float(multithreading_efficiency(10, 10.0, 90.0, 0.0))
    1.0
    """
    p = np.asarray(parallelism, dtype=float)
    r = np.asarray(run_cycles, dtype=float)
    l = np.asarray(latency_cycles, dtype=float)
    c = np.asarray(switch_cycles, dtype=float)
    if np.any(p < 1):
        raise ValueError("parallelism must be >= 1")
    if np.any(r <= 0):
        raise ValueError("run_cycles must be positive")
    linear = p * r / (r + c + l)
    saturated = r / (r + c)
    return np.minimum(linear, saturated)


def _per_transaction_terms(params: ParcelParams) -> _t.Tuple[float, ...]:
    """Common per-remote-transaction expectations (cycles).

    Returns ``(work, own_useful_cycles, local_service_cycles)`` where a
    *transaction* is one remote access plus the expected local work
    between remote accesses.
    """
    r = params.effective_remote_fraction
    if r <= 0.0:
        raise ValueError(
            "analytic ratio needs remote_fraction > 0 and n_nodes > 1"
        )
    mix = params.ls_mix
    accesses_per_txn = 1.0 / r
    compute_per_txn = accesses_per_txn * (1.0 - mix) / mix
    local_per_txn = accesses_per_txn - 1.0
    work_per_txn = compute_per_txn + accesses_per_txn
    return (
        work_per_txn,
        compute_per_txn,
        local_per_txn * params.memory_cycles,
    )


def control_work_rate(params: ParcelParams) -> float:
    """Control-system work per cycle per node (closed form, exact).

    The control thread strictly alternates: compute, local accesses,
    send, round-trip wait, receive — no contention anywhere, so its
    steady-state throughput is deterministic.
    """
    work, compute, local_svc = _per_transaction_terms(params)
    cycle = (
        compute
        + local_svc
        + params.send_overhead_cycles
        + params.round_trip_cycles
        + params.memory_cycles
        + params.receive_overhead_cycles
    )
    return work / cycle


def test_work_rate_estimate(params: ParcelParams) -> float:
    """Test-system work per cycle per node (queueing-free estimate).

    The node processor spends, per originated transaction:

    * its own useful work: compute + local accesses;
    * origination overhead: send + context switch + reply receive;
    * incident service (one per originated, in expectation under uniform
      traffic): receive + action memory time + reply send.

    Throughput is the lesser of the parallelism-limited rate
    (``P`` contexts, each blocked ~round-trip per transaction) and the
    processor-saturated rate.
    """
    work, compute, local_svc = _per_transaction_terms(params)
    p = params
    own_busy = (
        compute
        + local_svc
        + p.send_overhead_cycles
        + p.context_switch_cycles
        + p.receive_overhead_cycles
    )
    incident_busy = (
        p.receive_overhead_cycles + p.memory_cycles + p.send_overhead_cycles
    )
    busy_per_txn = own_busy + incident_busy
    # a context's wall-clock per transaction if the CPU were free:
    wait = p.round_trip_cycles + incident_busy
    ctx_cycle = own_busy + wait
    rate_parallelism = p.parallelism / ctx_cycle
    rate_saturation = 1.0 / busy_per_txn
    txn_rate = min(rate_parallelism, rate_saturation)
    return work * txn_rate


def parcel_ratio_estimate(params: ParcelParams) -> float:
    """Predicted Fig. 11 ratio (test work / control work).

    Queueing-free: an upper bound the DES approaches from below at
    moderate load.  Captures both regimes the paper reports — >10× gains
    with ample parallelism and latency, and ratios below 1 when overheads
    dominate (small ``P``, short ``L``).
    """
    return test_work_rate_estimate(params) / control_work_rate(params)
