"""Parcel action registry and service-cost models.

The paper describes parcel actions ranging from "simple memory reads and
writes, through atomic arithmetic memory operations, to remote method
invocations on objects in memory".  For the statistical study an action is
characterized by its *service cost* at the target node: how many memory
accesses it performs and how many additional processor cycles it burns.
The functional ISA simulator reuses the same names with real semantics.

Custom actions can be registered; the built-ins cover the paper's range:

========== ======================== ======================================
name        cost (accesses, cycles)  semantics (functional simulator)
========== ======================== ======================================
``load``    1, 0                     read one word, reply with its value
``store``   1, 0                     write operand to target, optional ack
``amo.add`` 1, 1                     fetch-and-add, reply with old value
``method``  4, 8                     short method invocation on an object
========== ======================== ======================================
"""

from __future__ import annotations

import dataclasses
import typing as _t

__all__ = [
    "ActionSpec",
    "ActionRegistry",
    "DEFAULT_ACTIONS",
    "default_registry",
]


@dataclasses.dataclass(frozen=True)
class ActionSpec:
    """Cost model of one parcel action at its target node.

    Attributes
    ----------
    name:
        Action specifier carried in parcels.
    memory_accesses:
        Row-buffer / memory accesses the action performs at the target.
    compute_cycles:
        Additional processor cycles beyond the memory accesses (e.g. the
        add of a fetch-and-add, or method body execution).
    produces_reply:
        Whether the action naturally yields a result parcel.
    """

    name: str
    memory_accesses: int = 1
    compute_cycles: float = 0.0
    produces_reply: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("action name must be non-empty")
        if self.memory_accesses < 0:
            raise ValueError("memory_accesses must be non-negative")
        if self.compute_cycles < 0:
            raise ValueError("compute_cycles must be non-negative")

    def service_cycles(self, memory_cycles: float) -> float:
        """Total node service time given the per-access memory time."""
        return (
            self.memory_accesses * memory_cycles + self.compute_cycles
        )


#: The built-in action set spanning the paper's parcel examples.
DEFAULT_ACTIONS: _t.Tuple[ActionSpec, ...] = (
    ActionSpec("load", memory_accesses=1, compute_cycles=0.0),
    ActionSpec(
        "store", memory_accesses=1, compute_cycles=0.0, produces_reply=False
    ),
    ActionSpec("amo.add", memory_accesses=1, compute_cycles=1.0),
    ActionSpec("method", memory_accesses=4, compute_cycles=8.0),
)


class ActionRegistry:
    """Name → :class:`ActionSpec` mapping with registration.

    Examples
    --------
    >>> reg = default_registry()
    >>> reg["load"].memory_accesses
    1
    >>> reg.register(ActionSpec("histogram.update", 2, 1.0, False))
    >>> "histogram.update" in reg
    True
    """

    def __init__(self, actions: _t.Iterable[ActionSpec] = ()) -> None:
        self._specs: _t.Dict[str, ActionSpec] = {}
        for spec in actions:
            self.register(spec)

    def register(self, spec: ActionSpec, replace: bool = False) -> None:
        """Add an action; refuses silent redefinition unless ``replace``."""
        if spec.name in self._specs and not replace:
            raise ValueError(
                f"action {spec.name!r} already registered "
                "(pass replace=True to override)"
            )
        self._specs[spec.name] = spec

    def __getitem__(self, name: str) -> ActionSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown parcel action {name!r}; registered: "
                f"{sorted(self._specs)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> _t.Iterator[ActionSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def names(self) -> _t.List[str]:
        return sorted(self._specs)


def default_registry() -> ActionRegistry:
    """A fresh registry pre-populated with :data:`DEFAULT_ACTIONS`."""
    return ActionRegistry(DEFAULT_ACTIONS)
