"""Parameter sweeps regenerating the parcel figures (paper Figs. 11–12).

Fig. 11 ("Latency Hiding with Parcels"): six major experiments, one per
degree of parallelism; within each, curves per remote-access percentage;
the x-axis sweeps the system-wide latency; the y-axis is the ratio of work
done by the parcel test system to the message-passing control system in
equal simulated time.

Fig. 12 ("Idle Time with respect to Degree of Parallelism"): one panel per
system size (1 … 256 nodes — including the 16-node case the paper's runs
did not complete), sweeping parallelism and reporting the idle fraction of
the test system alongside the (parallelism-independent) control system.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ..grid import SweepGrid
from ..params import ParcelParams
from .systems import simulate_message_passing, simulate_parcels

__all__ = [
    "PAPER_PARALLELISM_LEVELS",
    "PAPER_REMOTE_FRACTIONS",
    "PAPER_LATENCIES",
    "PAPER_NODE_COUNTS_FIG12",
    "Figure11Result",
    "Figure12Result",
    "figure11_sweep",
    "figure12_sweep",
    "overhead_ablation_sweep",
]

#: The "six major experiments differing in terms of the amount of
#: parallelism available to [the] test system" (parcels per processor).
PAPER_PARALLELISM_LEVELS: _t.Tuple[int, ...] = (1, 2, 4, 16, 64, 256)

#: Remote-access percentages (fraction of memory accesses that are remote).
PAPER_REMOTE_FRACTIONS: _t.Tuple[float, ...] = (0.05, 0.1, 0.2, 0.5)

#: System-wide one-way latencies (cycles) swept along Fig. 11's x-axis.
PAPER_LATENCIES: _t.Tuple[float, ...] = (10.0, 100.0, 1000.0, 10000.0)

#: Fig. 12's "8 major experimental sets" of node counts, 1 … 256.  The
#: paper notes "We didn't successfully complete the 16 node case"; this
#: reproduction includes it.
PAPER_NODE_COUNTS_FIG12: _t.Tuple[int, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256,
)


@dataclasses.dataclass(frozen=True)
class Figure11Result:
    """One :class:`SweepGrid` of work ratios per parallelism level."""

    panels: _t.Mapping[int, SweepGrid]
    base_params: ParcelParams
    horizon_cycles: float

    def panel(self, parallelism: int) -> SweepGrid:
        return self.panels[parallelism]

    def to_rows(self) -> _t.List[dict]:
        rows: _t.List[dict] = []
        for parallelism, grid in self.panels.items():
            for record in grid.to_rows():
                record["parallelism"] = parallelism
                rows.append(record)
        return rows

    def max_ratio(self) -> float:
        return max(float(g.values.max()) for g in self.panels.values())

    def min_ratio(self) -> float:
        return min(float(g.values.min()) for g in self.panels.values())


@dataclasses.dataclass(frozen=True)
class Figure12Result:
    """Idle fractions vs parallelism, one grid per node count.

    Each grid has two rows: ``test`` idle fractions per parallelism level
    and the control system's (parallelism-independent, repeated) idle
    fraction.
    """

    panels: _t.Mapping[int, SweepGrid]
    base_params: ParcelParams
    horizon_cycles: float

    def panel(self, n_nodes: int) -> SweepGrid:
        return self.panels[n_nodes]

    def to_rows(self) -> _t.List[dict]:
        rows: _t.List[dict] = []
        for n_nodes, grid in self.panels.items():
            for record in grid.to_rows():
                record["n_nodes"] = n_nodes
                rows.append(record)
        return rows


def figure11_sweep(
    base_params: _t.Optional[ParcelParams] = None,
    parallelism_levels: _t.Sequence[int] = PAPER_PARALLELISM_LEVELS,
    remote_fractions: _t.Sequence[float] = PAPER_REMOTE_FRACTIONS,
    latencies: _t.Sequence[float] = PAPER_LATENCIES,
    horizon_cycles: float = 20_000.0,
    seed: int = 0,
    stochastic: bool = True,
) -> Figure11Result:
    """Regenerate Fig. 11: work ratio vs latency, per remote % and P.

    The control system does not depend on parallelism, so each
    ``(remote fraction, latency)`` control run is shared across panels.
    """
    base = base_params or ParcelParams()
    control_work: _t.Dict[_t.Tuple[float, float], float] = {}
    for r in remote_fractions:
        for lat in latencies:
            params = base.with_(remote_fraction=r, latency_cycles=lat)
            control_work[(r, lat)] = simulate_message_passing(
                params, horizon_cycles, seed, stochastic
            ).total_work

    panels: _t.Dict[int, SweepGrid] = {}
    for p in parallelism_levels:
        values = np.empty((len(remote_fractions), len(latencies)))
        for i, r in enumerate(remote_fractions):
            for j, lat in enumerate(latencies):
                params = base.with_(
                    parallelism=int(p),
                    remote_fraction=r,
                    latency_cycles=lat,
                )
                test = simulate_parcels(
                    params, horizon_cycles, seed, stochastic
                )
                values[i, j] = test.total_work / control_work[(r, lat)]
        panels[int(p)] = SweepGrid(
            name=f"figure11.P{p}",
            row_label="remote_fraction",
            rows=tuple(float(r) for r in remote_fractions),
            col_label="latency_cycles",
            cols=tuple(float(l) for l in latencies),
            values=values,
            value_label="work_ratio",
        )
    return Figure11Result(
        panels=panels, base_params=base, horizon_cycles=horizon_cycles
    )


def figure12_sweep(
    base_params: _t.Optional[ParcelParams] = None,
    node_counts: _t.Sequence[int] = PAPER_NODE_COUNTS_FIG12,
    parallelism_levels: _t.Sequence[int] = (1, 2, 4, 8, 16, 32),
    horizon_cycles: float = 10_000.0,
    seed: int = 0,
    stochastic: bool = True,
) -> Figure12Result:
    """Regenerate Fig. 12: idle fraction vs parallelism, per system size.

    Uses the base parameters' remote fraction and latency (defaults:
    20 % remote, 100-cycle latency) for every panel; single-node systems
    have no remote accesses by construction, so both systems show
    near-zero idle there, as expected.
    """
    base = base_params or ParcelParams()
    panels: _t.Dict[int, SweepGrid] = {}
    for n in node_counts:
        params_n = base.with_(n_nodes=int(n))
        control_idle = simulate_message_passing(
            params_n, horizon_cycles, seed, stochastic
        ).idle_fraction
        test_row = np.empty(len(parallelism_levels))
        for j, p in enumerate(parallelism_levels):
            params = params_n.with_(parallelism=int(p))
            test_row[j] = simulate_parcels(
                params, horizon_cycles, seed, stochastic
            ).idle_fraction
        values = np.vstack(
            [test_row, np.full(len(parallelism_levels), control_idle)]
        )
        panels[int(n)] = SweepGrid(
            name=f"figure12.N{n}",
            row_label="system",
            rows=(0.0, 1.0),  # 0 = test, 1 = control
            col_label="parallelism",
            cols=tuple(float(p) for p in parallelism_levels),
            values=values,
            value_label="idle_fraction",
        )
    return Figure12Result(
        panels=panels, base_params=base, horizon_cycles=horizon_cycles
    )


def overhead_ablation_sweep(
    base_params: _t.Optional[ParcelParams] = None,
    overheads: _t.Sequence[float] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
    horizon_cycles: float = 20_000.0,
    seed: int = 0,
    stochastic: bool = True,
) -> SweepGrid:
    """Ablation: work ratio vs parcel-handling overhead.

    Sets send/receive/context-switch overheads together and recomputes the
    Fig. 11 ratio at the base parameter point, quantifying the paper's
    conclusion that "efficient parcel handling mechanisms are required to
    realize performance gains".
    """
    base = base_params or ParcelParams()
    values = np.empty((1, len(overheads)))
    for j, ov in enumerate(overheads):
        params = base.with_(
            send_overhead_cycles=float(ov),
            receive_overhead_cycles=float(ov),
            context_switch_cycles=float(ov) / 2.0,
        )
        test = simulate_parcels(params, horizon_cycles, seed, stochastic)
        control = simulate_message_passing(
            params, horizon_cycles, seed, stochastic
        )
        values[0, j] = test.total_work / control.total_work
    return SweepGrid(
        name="ablation-overhead",
        row_label="base_point",
        rows=(0.0,),
        col_label="overhead_cycles",
        cols=tuple(float(o) for o in overheads),
        values=values,
        value_label="work_ratio",
    )
