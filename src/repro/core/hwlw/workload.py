"""Statistical workload generation for the HWP/LWP study (paper Fig. 4).

The experimental workload of §3.1 divides ``W`` operations between the
heavyweight host (high temporal locality; good cache behavior) and the LWP
array (no temporal locality).  Execution alternates: an HWP region runs,
then the LWP work of that region is forked into ``N`` concurrent, uniform
threads (one per LWP node) and joined — "at any one time, either the HWP or
LWP array is executing but not both".  That timeline is captured by a
sequence of :class:`WorkSection` items.

Per-operation behavior is statistical: a fraction ``ls_mix`` of operations
are loads/stores, and on the HWP a fraction ``miss_rate`` of those miss the
cache.  :class:`OperationMixSampler` turns an operation count into sampled
(or expected, in deterministic mode) load/store and miss counts.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ..params import Table1Params

__all__ = ["WorkSection", "PhasedWorkload", "OperationMixSampler"]


@dataclasses.dataclass(frozen=True)
class WorkSection:
    """One HWP region followed by one forked LWP region (Fig. 4)."""

    hwp_ops: float
    lwp_ops: float

    def __post_init__(self) -> None:
        if self.hwp_ops < 0 or self.lwp_ops < 0:
            raise ValueError("section op counts must be non-negative")

    @property
    def total_ops(self) -> float:
        return self.hwp_ops + self.lwp_ops


class PhasedWorkload:
    """The alternating HWP/LWP phase structure of the experiment.

    Parameters
    ----------
    params:
        Table 1 parameter set (supplies ``total_work``).
    lwp_fraction:
        ``%WL`` in [0, 1] — share of operations with no temporal locality.
    sections:
        Number of HWP-then-LWP sections the timeline is divided into.
        The paper's diagrams show a handful of alternations; the aggregate
        result is independent of this count (an ablation experiment
        verifies that), so it is a structural knob, default 8.

    Examples
    --------
    >>> wl = PhasedWorkload(Table1Params(), lwp_fraction=0.4, sections=4)
    >>> wl.total_lwp_ops
    40000000.0
    >>> len(wl.sections)
    4
    """

    def __init__(
        self,
        params: Table1Params,
        lwp_fraction: float,
        sections: int = 8,
    ) -> None:
        if not 0.0 <= lwp_fraction <= 1.0:
            raise ValueError(
                f"lwp_fraction must be in [0, 1], got {lwp_fraction}"
            )
        if sections < 1:
            raise ValueError(f"sections must be >= 1, got {sections}")
        self.params = params
        self.lwp_fraction = float(lwp_fraction)
        w = float(params.total_work)
        wl = w * self.lwp_fraction
        wh = w - wl
        per_h = wh / sections
        per_l = wl / sections
        self.sections: _t.List[WorkSection] = [
            WorkSection(per_h, per_l) for _ in range(sections)
        ]

    # ------------------------------------------------------------------
    @property
    def total_hwp_ops(self) -> float:
        return sum(s.hwp_ops for s in self.sections)

    @property
    def total_lwp_ops(self) -> float:
        return sum(s.lwp_ops for s in self.sections)

    @property
    def total_ops(self) -> float:
        return self.total_hwp_ops + self.total_lwp_ops

    def split_lwp_ops(
        self, section: WorkSection, n_nodes: int, skew: float = 0.0
    ) -> np.ndarray:
        """Partition a section's LWP ops into ``n_nodes`` threads.

        The paper assumes threads "concurrent and uniform in length, one
        per LWP" (``skew=0``); the load-imbalance extension ramps shares
        linearly from ``1-skew`` to ``1+skew`` times the mean (see
        :func:`repro.core.hwlw.extensions.skewed_thread_shares`).
        """
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        from .extensions import skewed_thread_shares

        shares = skewed_thread_shares(n_nodes, skew)
        return shares * (section.lwp_ops / n_nodes)

    def __repr__(self) -> str:
        return (
            f"<PhasedWorkload W={self.params.total_work} "
            f"%WL={self.lwp_fraction:.0%} sections={len(self.sections)}>"
        )


class OperationMixSampler:
    """Samples load/store and cache-miss counts for an operation batch.

    In *stochastic* mode, load/store counts are Binomial(n, mix) and miss
    counts Binomial(n_ls, miss_rate) — the statistical steady-state model
    of the paper.  In *deterministic* mode, expected values are used, which
    makes the queuing simulation agree with the closed-form model to
    floating-point accuracy (useful for validation).

    Parameters
    ----------
    ls_mix:
        Probability an operation is a load/store.
    miss_rate:
        Probability a load/store misses (HWP only; pass 0 for LWPs, which
        have no cache — every access goes to the adjacent row buffer).
    stochastic:
        Sampling mode as above.
    """

    def __init__(
        self, ls_mix: float, miss_rate: float, stochastic: bool = True
    ) -> None:
        if not 0.0 <= ls_mix <= 1.0:
            raise ValueError(f"ls_mix must be in [0, 1], got {ls_mix}")
        if not 0.0 <= miss_rate <= 1.0:
            raise ValueError(f"miss_rate must be in [0, 1], got {miss_rate}")
        self.ls_mix = float(ls_mix)
        self.miss_rate = float(miss_rate)
        self.stochastic = bool(stochastic)

    def sample(
        self, ops: float, rng: _t.Optional[np.random.Generator]
    ) -> _t.Tuple[float, float]:
        """Return ``(loadstore_count, miss_count)`` for a batch of ``ops``.

        ``ops`` may be fractional in deterministic mode; stochastic mode
        rounds to an integer count before sampling.
        """
        if ops < 0:
            raise ValueError(f"ops must be non-negative, got {ops}")
        if not self.stochastic:
            n_ls = ops * self.ls_mix
            return n_ls, n_ls * self.miss_rate
        if rng is None:
            raise ValueError("stochastic sampling requires an rng")
        n = int(round(ops))
        n_ls = int(rng.binomial(n, self.ls_mix)) if n else 0
        n_miss = (
            int(rng.binomial(n_ls, self.miss_rate))
            if n_ls and self.miss_rate > 0.0
            else 0
        )
        return float(n_ls), float(n_miss)
