"""Deriving ``TML`` from the simulated memory system.

Table 1 fixes the LWP's memory access time at a constant
``TML = 30`` cycles.  With :mod:`repro.memsys` in the tree that number
no longer has to be assumed: the LWP sits beside one DRAM macro, so its
average access time is exactly the per-access bank occupancy a
single-bank simulated replay measures on no-locality traffic.  This
module closes that ROADMAP loop — the HWP/LWP study's ``TML`` can now
come from measured per-request latencies instead of the Table 1
constant.

The derivation replays a trace through a one-channel, one-bank system
at line rate: the bank is never idle, so ``makespan / n_requests`` is
the mean per-access service time (activation + page transfer, weighted
by the measured row-buffer outcome mix) — the simulated counterpart of
the paper's 30-cycle figure.  Feeding it back through
:meth:`~repro.core.params.Table1Params.with_` yields a parameter set
whose break-even node count ``NB`` reflects the simulated memory
system rather than the assumption.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ...memsys import MemSysConfig, MemorySystem, MemSysStats
from ...memsys.trace import synthesize_trace
from ..params import Table1Params

__all__ = ["TmlDerivation", "derive_tml_params"]


@dataclasses.dataclass(frozen=True)
class TmlDerivation:
    """A measured ``TML`` and the parameter set it produces.

    Attributes
    ----------
    params:
        ``base_params`` with ``lwp_memory_cycles`` replaced by the
        measured value.
    tml_cycles:
        The measured mean per-access time, in HWP cycles.
    tml_ns:
        The same, in nanoseconds.
    pattern:
        Trace pattern the measurement replayed.
    row_hit_rate:
        Measured row-buffer hit rate of the replay.
    n_requests:
        Requests replayed.
    """

    params: Table1Params
    tml_cycles: float
    tml_ns: float
    pattern: str
    row_hit_rate: float
    n_requests: int


def derive_tml_params(
    base_params: _t.Optional[Table1Params] = None,
    *,
    config: _t.Optional[MemSysConfig] = None,
    pattern: str = "random",
    n: int = 4_096,
    seed: int = 0,
) -> TmlDerivation:
    """Measure ``TML`` by replaying ``pattern`` traffic on one bank.

    Parameters
    ----------
    base_params:
        Parameter set to update (Table 1 defaults if omitted).
    config:
        Memory-system configuration; defaults to a single-channel,
        single-bank geometry with paper timing — the LWP's local macro.
        Multi-bank configs are reduced to their timing/policy on the
        same single-bank geometry (``TML`` is a per-macro quantity).
    pattern:
        Trace pattern (``"random"`` is the no-temporal-locality traffic
        the paper assigns to the LWPs; ``"sequential"`` gives the
        streaming lower bound).
    n:
        Requests to replay.
    seed:
        RNG seed for the stochastic patterns.
    """
    base_params = base_params or Table1Params()
    if n < 1:
        raise ValueError("n must be >= 1")
    if config is None:
        config = MemSysConfig(
            n_channels=1, bankgroups=1, banks_per_group=1
        )
    else:
        config = dataclasses.replace(
            config, n_channels=1, bankgroups=1, banks_per_group=1
        )
    trace = synthesize_trace(pattern, n, config, seed=seed, packed=True)
    stats: MemSysStats = MemorySystem(config).replay(trace)
    tml_ns = stats.makespan_ns / stats.n_requests
    tml_cycles = tml_ns / base_params.hwp_cycle_ns
    return TmlDerivation(
        params=base_params.with_(lwp_memory_cycles=tml_cycles),
        tml_cycles=tml_cycles,
        tml_ns=tml_ns,
        pattern=pattern,
        row_hit_rate=stats.row_hit_rate,
        n_requests=stats.n_requests,
    )
