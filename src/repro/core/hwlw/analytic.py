"""Closed-form model of the HWP/LWP partitioning tradeoff (paper §3.1.2).

The paper derives, for a workload of ``W`` operations of which a fraction
``%WL`` has no temporal locality and is assigned to ``N`` PIM lightweight
processors (the rest running on the cache-based heavyweight host):

.. math::

    Time_{relative} \\;=\\; 1 - \\%WL \\times \\Big\\{ 1 - \\frac{NB}{N} \\Big\\}

    NB \\;\\equiv\\; \\frac{T_{Lcycle} + mix_{l/s}\\,(T_{ML} - T_{Lcycle})}
                        {1 + mix_{l/s}\\,(T_{CH} - 1 + P_{miss}\\,T_{MH})}

with time normalized to the HWP executing *only* high-locality work.  The
numerator of ``NB`` is the LWP's cycles per operation, the denominator the
HWP's cycles per operation; ``NB`` is therefore the **break-even node
count**: a third parameter, orthogonal to ``N`` and ``%WL``, combining
machine configuration and application behavior.  For ``N > NB`` the PIM
system is *always* at least as fast, independent of ``%WL`` — the paper's
"remarkable property" (Fig. 7's coincidence point).

All functions broadcast over NumPy arrays so whole design-space grids are
evaluated in one call (this replaces the paper's MATLAB/Excel models).

Performance-gain conventions (Fig. 5)
-------------------------------------
The control run executes *all* work on the HWP.  Work assigned to PIM is,
by the study's construction, work whose "data accesses exhibit no reuse",
so in the control run that fraction sees a cache miss rate of
``control_miss_rate`` (1.0 by default) rather than ``Pmiss``.  The gain of
the PIM-augmented system over the control is then

.. math::

    gain(f, N) = \\frac{(1-f)\\,c_H + f\\,c_{H,noreuse}}
                      {(1-f)\\,c_H + f\\,c_L / N}

where ``c_H``, ``c_{H,noreuse}`` and ``c_L`` are the respective
cycles-per-operation.  With Table 1 values the extreme point
(``f = 1``, ``N = 64``) gives ≈ 145×, matching the paper's "factor of
100X gain ... observed" for the all-LWP corner.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..params import Table1Params

__all__ = [
    "hwp_cycles_per_op",
    "lwp_cycles_per_op",
    "nb_parameter",
    "time_relative",
    "test_time",
    "control_time",
    "performance_gain",
    "response_time_cycles",
    "speedup_vs_no_lwp",
    "crossover_width",
]

ArrayLike = _t.Union[float, _t.Sequence[float], np.ndarray]


def hwp_cycles_per_op(
    params: Table1Params, miss_rate: _t.Optional[float] = None
) -> float:
    """Average HWP cycles per operation.

    Every operation issues in 1 cycle; the load/store fraction
    additionally pays the cache access beyond the issue cycle
    (``TCH - 1``) and, on a miss, the memory penalty ``TMH``.

    Parameters
    ----------
    params:
        Table 1 parameter set.
    miss_rate:
        Cache miss rate to assume; defaults to ``params.miss_rate``
        (pass ``params.control_miss_rate`` for the no-reuse fraction of
        the control run).

    With Table 1 defaults: ``1 + 0.3*(2 - 1 + 0.1*90) = 4.0`` cycles/op.
    """
    pm = params.miss_rate if miss_rate is None else miss_rate
    if not 0.0 <= pm <= 1.0:
        raise ValueError(f"miss_rate must be in [0, 1], got {pm}")
    return 1.0 + params.ls_mix * (
        params.hwp_cache_cycles - 1.0 + pm * params.hwp_memory_cycles
    )


def lwp_cycles_per_op(params: Table1Params) -> float:
    """Average LWP cycles per operation, in HWP cycles.

    Non-memory operations cost a full LWP cycle (``TLcycle``); the
    load/store fraction costs the PIM-local memory time ``TML`` instead.
    With Table 1 defaults: ``5 + 0.3*(30 - 5) = 12.5`` cycles/op.
    """
    return params.lwp_cycle_cycles + params.ls_mix * (
        params.lwp_memory_cycles - params.lwp_cycle_cycles
    )


def nb_parameter(params: Table1Params) -> float:
    """The paper's ``NB``: LWP cycles/op over HWP cycles/op.

    The break-even PIM node count — Fig. 7's coincidence point.  With
    Table 1 defaults: ``12.5 / 4.0 = 3.125``.
    """
    return lwp_cycles_per_op(params) / hwp_cycles_per_op(params)


def time_relative(
    lwp_fraction: ArrayLike,
    n_nodes: ArrayLike,
    params: _t.Optional[Table1Params] = None,
) -> np.ndarray:
    """The paper's central equation: normalized time to solution.

    ``Time_relative = 1 - %WL * (1 - NB/N)``, normalized to the HWP alone
    executing only high-locality work (the 0 % LWP workload point).

    Parameters
    ----------
    lwp_fraction:
        ``%WL`` as a fraction in [0, 1]; broadcasts.
    n_nodes:
        ``N`` >= 1; broadcasts.
    params:
        Table 1 parameters (defaults used if omitted).

    Returns
    -------
    numpy.ndarray
        Broadcast result; scalar inputs give a 0-d array.
    """
    params = params or Table1Params()
    f = np.asarray(lwp_fraction, dtype=float)
    n = np.asarray(n_nodes, dtype=float)
    if np.any(f < 0.0) or np.any(f > 1.0):
        raise ValueError("lwp_fraction must lie in [0, 1]")
    if np.any(n < 1.0):
        raise ValueError("n_nodes must be >= 1")
    nb = nb_parameter(params)
    return 1.0 - f * (1.0 - nb / n)


def test_time(
    lwp_fraction: ArrayLike,
    n_nodes: ArrayLike,
    params: _t.Optional[Table1Params] = None,
) -> np.ndarray:
    """Absolute time (HWP cycles = ns) of the PIM-augmented test system.

    High-locality work runs serially on the HWP; low-locality work is
    divided into ``N`` uniform threads on the LWP array (Fig. 4), so its
    time divides by ``N``.
    """
    params = params or Table1Params()
    f = np.asarray(lwp_fraction, dtype=float)
    n = np.asarray(n_nodes, dtype=float)
    if np.any(f < 0.0) or np.any(f > 1.0):
        raise ValueError("lwp_fraction must lie in [0, 1]")
    if np.any(n < 1.0):
        raise ValueError("n_nodes must be >= 1")
    w = float(params.total_work)
    ch = hwp_cycles_per_op(params)
    cl = lwp_cycles_per_op(params)
    return w * ((1.0 - f) * ch + f * cl / n)


def control_time(
    lwp_fraction: ArrayLike,
    params: _t.Optional[Table1Params] = None,
) -> np.ndarray:
    """Absolute time of the control system (HWP does everything).

    The low-locality fraction has no data reuse, so it runs at the
    control miss rate (1.0 by default) instead of ``Pmiss``.
    """
    params = params or Table1Params()
    f = np.asarray(lwp_fraction, dtype=float)
    if np.any(f < 0.0) or np.any(f > 1.0):
        raise ValueError("lwp_fraction must lie in [0, 1]")
    w = float(params.total_work)
    ch = hwp_cycles_per_op(params)
    ch_noreuse = hwp_cycles_per_op(params, miss_rate=params.control_miss_rate)
    return w * ((1.0 - f) * ch + f * ch_noreuse)


def performance_gain(
    lwp_fraction: ArrayLike,
    n_nodes: ArrayLike,
    params: _t.Optional[Table1Params] = None,
) -> np.ndarray:
    """Fig. 5's dependent variable: control time over test time.

    Values above 1 mean the PIM-augmented system wins.  With Table 1
    defaults the all-LWP corner at ``N = 64`` reaches ≈ 145×.
    """
    params = params or Table1Params()
    return control_time(lwp_fraction, params) / test_time(
        lwp_fraction, n_nodes, params
    )


def response_time_cycles(
    lwp_fraction: ArrayLike,
    n_nodes: ArrayLike,
    params: _t.Optional[Table1Params] = None,
) -> np.ndarray:
    """Fig. 6's dependent variable: unnormalized test-system time.

    Alias of :func:`test_time`; the figure plots it in nanoseconds, which
    equals cycles for the 1 ns HWP cycle of Table 1.
    """
    return test_time(lwp_fraction, n_nodes, params)


def speedup_vs_no_lwp(
    lwp_fraction: ArrayLike,
    n_nodes: ArrayLike,
    params: _t.Optional[Table1Params] = None,
) -> np.ndarray:
    """Reciprocal of :func:`time_relative` — speedup over the 0 %-WL base."""
    return 1.0 / time_relative(lwp_fraction, n_nodes, params)


def crossover_width(
    params: _t.Optional[Table1Params] = None,
    n_lo: float = 1.0,
    n_hi: float = 64.0,
) -> _t.Tuple[float, float]:
    """Loss/win extrema of ``time_relative`` over ``[n_lo, n_hi]`` at f=1.

    Returns ``(worst, best)`` normalized times; ``worst`` > 1 quantifies
    the penalty of deploying fewer than ``NB`` nodes, ``best`` < 1 the
    payoff of the full array.  Useful for design-space summaries.
    """
    params = params or Table1Params()
    worst = float(time_relative(1.0, n_lo, params))
    best = float(time_relative(1.0, n_hi, params))
    return (worst, best)
