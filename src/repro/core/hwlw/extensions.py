"""Extensions beyond the paper's model: overlap and load imbalance.

The §3 study makes two simplifying assumptions that the paper itself
flags as modeling choices rather than architectural necessities:

1. **Strict phase alternation** — "At any one time, either the HWP or
   LWP array is executing but not both" (Fig. 4).  A hybrid system with
   an intelligent memory controller can overlap host and PIM regions of
   the same section; :func:`time_relative_overlapped` models that, and
   :class:`~repro.core.hwlw.simulation.HybridSystemModel` accepts
   ``overlap=True`` via :class:`HwlwSimConfig`.

2. **Uniform LWP threads** — the low-locality work is assumed
   perfectly balanced across nodes.  Real irregular workloads skew;
   :func:`time_relative_skewed` charges the array with its slowest
   thread (a linear skew profile with a ``skew`` severity knob).

Both collapse to the paper's equations at ``overlap=False`` /
``skew=0``; the ``extension-overlap`` and ``ablation-imbalance``
experiments quantify the differences.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..params import Table1Params
from .analytic import nb_parameter

__all__ = [
    "time_relative_overlapped",
    "overlap_crossover_fraction",
    "skewed_thread_shares",
    "time_relative_skewed",
]

ArrayLike = _t.Union[float, _t.Sequence[float], np.ndarray]


def time_relative_overlapped(
    lwp_fraction: ArrayLike,
    n_nodes: ArrayLike,
    params: _t.Optional[Table1Params] = None,
) -> np.ndarray:
    """Normalized time when HWP and LWP regions execute concurrently.

    Each section's host part and PIM part proceed in parallel, so the
    section takes the *maximum* of the two instead of their sum:

    .. math::

        Time^{ovl}_{relative} = \\max\\big(1 - \\%WL,\\;
                                           \\%WL \\cdot NB / N\\big)

    Always <= the serial model; equality holds when either side is
    empty.  Unlike the serial model, the overlapped system is **never**
    slower than the control for any ``N >= NB`` *or* any
    ``%WL <= 1/2``-ish region — the loss region shrinks to points where
    slow PIM dominates outright.
    """
    params = params or Table1Params()
    f = np.asarray(lwp_fraction, dtype=float)
    n = np.asarray(n_nodes, dtype=float)
    if np.any(f < 0.0) or np.any(f > 1.0):
        raise ValueError("lwp_fraction must lie in [0, 1]")
    if np.any(n < 1.0):
        raise ValueError("n_nodes must be >= 1")
    nb = nb_parameter(params)
    return np.maximum(1.0 - f, f * nb / n)


def overlap_crossover_fraction(
    n_nodes: ArrayLike, params: _t.Optional[Table1Params] = None
) -> np.ndarray:
    """The %WL at which PIM time starts dominating under overlap.

    Below this fraction the host side is the critical path (overlapped
    time = 1 - %WL); above it, the PIM side.  Solves
    ``1 - f = f * NB / N``:  ``f* = N / (N + NB)``.
    """
    params = params or Table1Params()
    n = np.asarray(n_nodes, dtype=float)
    if np.any(n < 1.0):
        raise ValueError("n_nodes must be >= 1")
    nb = nb_parameter(params)
    return n / (n + nb)


def skewed_thread_shares(n_nodes: int, skew: float) -> np.ndarray:
    """Per-thread work shares under a linear imbalance profile.

    ``skew`` in [0, 1): thread shares ramp linearly from ``1 - skew`` to
    ``1 + skew`` times the mean (total conserved).  ``skew=0`` is the
    paper's uniform split.

    Examples
    --------
    >>> skewed_thread_shares(4, 0.5).round(3).tolist()
    [0.5, 0.833, 1.167, 1.5]
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if not 0.0 <= skew < 1.0:
        raise ValueError("skew must be in [0, 1)")
    if n_nodes == 1:
        return np.ones(1)
    ramp = np.linspace(-1.0, 1.0, n_nodes)
    return 1.0 + skew * ramp


def time_relative_skewed(
    lwp_fraction: ArrayLike,
    n_nodes: int,
    skew: float,
    params: _t.Optional[Table1Params] = None,
) -> np.ndarray:
    """Serial-phase normalized time with imbalanced LWP threads.

    The array's fork/join completes with its most loaded thread, so the
    LWP term scales by ``(1 + skew)`` (for ``n_nodes > 1``):

    .. math::

        Time^{skew}_{relative} = 1 - \\%WL \\cdot
            \\big(1 - (1 + skew) \\, NB / N\\big)

    which shifts the effective break-even node count to
    ``(1 + skew) * NB``.
    """
    params = params or Table1Params()
    f = np.asarray(lwp_fraction, dtype=float)
    if np.any(f < 0.0) or np.any(f > 1.0):
        raise ValueError("lwp_fraction must lie in [0, 1]")
    shares = skewed_thread_shares(n_nodes, skew)
    worst = float(shares.max())
    nb = nb_parameter(params)
    return 1.0 - f * (1.0 - worst * nb / n_nodes)
