"""Parameter sweeps regenerating the HWP/LWP figures (paper Figs. 5–7).

Each sweep returns a :class:`SweepGrid` — a small labeled 2-D result
container (rows × columns of floats) that the experiment harness renders
as CSV, markdown, or ASCII plots.  Grids are plain data: they can also be
consumed directly from notebooks or tests.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..grid import SweepGrid
from ..params import Table1Params
from . import analytic
from .simulation import HwlwSimConfig, simulate_control, simulate_hybrid

__all__ = [
    "SweepGrid",
    "PAPER_NODE_COUNTS",
    "PAPER_LWP_FRACTIONS",
    "figure5_gain_sweep",
    "figure6_response_time_sweep",
    "figure7_normalized_time_sweep",
    "section_ablation_sweep",
]

#: Node counts on the x-axis of paper Fig. 6 (and the curve family of
#: Fig. 5): powers of two through a "modest scale system".
PAPER_NODE_COUNTS: _t.Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)

#: LWT workload percentages of Fig. 6's curve family (0% .. 100%).
PAPER_LWP_FRACTIONS: _t.Tuple[float, ...] = tuple(
    round(0.1 * i, 1) for i in range(11)
)


def figure5_gain_sweep(
    params: _t.Optional[Table1Params] = None,
    node_counts: _t.Sequence[int] = PAPER_NODE_COUNTS,
    lwp_fractions: _t.Sequence[float] = PAPER_LWP_FRACTIONS,
    config: _t.Optional[HwlwSimConfig] = None,
    use_simulation: bool = True,
) -> SweepGrid:
    """Fig. 5: performance gain of the PIM system over the control run.

    ``gain(f, N) = T_control(f) / T_test(f, N)``, from the queuing
    simulation (default) or the closed-form model
    (``use_simulation=False``; instantaneous, for large grids).
    """
    params = params or Table1Params()
    values = np.empty((len(node_counts), len(lwp_fractions)))
    if use_simulation:
        config = config or HwlwSimConfig()
        control = {
            f: simulate_control(params, f, config).completion_cycles
            for f in lwp_fractions
        }
        for i, n in enumerate(node_counts):
            for j, f in enumerate(lwp_fractions):
                test = simulate_hybrid(params, f, n, config)
                values[i, j] = control[f] / test.completion_cycles
    else:
        for i, n in enumerate(node_counts):
            values[i] = analytic.performance_gain(
                np.asarray(lwp_fractions), n, params
            )
    return SweepGrid(
        name="figure5",
        row_label="n_nodes",
        rows=tuple(float(n) for n in node_counts),
        col_label="lwp_fraction",
        cols=tuple(float(f) for f in lwp_fractions),
        values=values,
        value_label="performance_gain",
    )


def figure6_response_time_sweep(
    params: _t.Optional[Table1Params] = None,
    node_counts: _t.Sequence[int] = PAPER_NODE_COUNTS,
    lwp_fractions: _t.Sequence[float] = PAPER_LWP_FRACTIONS,
    config: _t.Optional[HwlwSimConfig] = None,
    use_simulation: bool = True,
) -> SweepGrid:
    """Fig. 6: unnormalized response time (ns) vs node count, per %LWT.

    Rows are LWT fractions (the figure's curve family), columns node
    counts (its x-axis).  The 0 % curve is flat at
    ``W × 4`` cycles = 4×10⁸ ns with Table 1 values; the 100 %, N=1 point
    is ``W × 12.5`` = 1.25×10⁹ ns.
    """
    params = params or Table1Params()
    values = np.empty((len(lwp_fractions), len(node_counts)))
    if use_simulation:
        config = config or HwlwSimConfig()
        for i, f in enumerate(lwp_fractions):
            for j, n in enumerate(node_counts):
                res = simulate_hybrid(params, f, n, config)
                values[i, j] = res.completion_ns
    else:
        for i, f in enumerate(lwp_fractions):
            values[i] = (
                analytic.response_time_cycles(
                    f, np.asarray(node_counts, dtype=float), params
                )
                * params.hwp_cycle_ns
            )
    return SweepGrid(
        name="figure6",
        row_label="lwp_fraction",
        rows=tuple(float(f) for f in lwp_fractions),
        col_label="n_nodes",
        cols=tuple(float(n) for n in node_counts),
        values=values,
        value_label="response_time_ns",
    )


def figure7_normalized_time_sweep(
    params: _t.Optional[Table1Params] = None,
    node_counts: _t.Sequence[float] = PAPER_NODE_COUNTS,
    lwp_fractions: _t.Sequence[float] = PAPER_LWP_FRACTIONS,
) -> SweepGrid:
    """Fig. 7: the analytic ``Time_relative`` surface.

    Purely closed-form (the paper plots the theoretical model here).  All
    curves coincide at ``N = NB`` where ``Time_relative = 1`` for every
    ``%WL`` — the orthogonality property the paper highlights.
    """
    params = params or Table1Params()
    f = np.asarray(lwp_fractions, dtype=float)[:, None]
    n = np.asarray(node_counts, dtype=float)[None, :]
    values = analytic.time_relative(f, n, params)
    return SweepGrid(
        name="figure7",
        row_label="lwp_fraction",
        rows=tuple(float(x) for x in np.ravel(f)),
        col_label="n_nodes",
        cols=tuple(float(x) for x in np.ravel(n)),
        values=values,
        value_label="time_relative",
    )


def section_ablation_sweep(
    params: _t.Optional[Table1Params] = None,
    lwp_fraction: float = 0.5,
    n_nodes: int = 8,
    section_counts: _t.Sequence[int] = (1, 2, 4, 8, 16, 32),
    stochastic: bool = False,
) -> SweepGrid:
    """Model-fidelity ablation: completion time vs Fig. 4 section count.

    The aggregate time must be independent of how many HWP/LWP
    alternations the workload is divided into (the phases serialize
    either way); this sweep demonstrates that structural invariance.
    """
    params = params or Table1Params()
    values = np.empty((1, len(section_counts)))
    for j, s in enumerate(section_counts):
        cfg = HwlwSimConfig(sections=int(s), stochastic=stochastic)
        values[0, j] = simulate_hybrid(
            params, lwp_fraction, n_nodes, cfg
        ).completion_cycles
    return SweepGrid(
        name="ablation-sections",
        row_label="lwp_fraction",
        rows=(float(lwp_fraction),),
        col_label="sections",
        cols=tuple(float(s) for s in section_counts),
        values=values,
        value_label="completion_cycles",
    )
