"""Simulation-versus-analytic validation (paper §3.1.2).

The paper reports that its analytical model reproduced the queuing
simulation "to an accuracy of between 5% and 18%".  This module runs the
same comparison for our implementations: for a grid of ``(%WL, N)`` points
it computes the relative discrepancy between the DES completion time and
the closed-form prediction, in both stochastic and deterministic sampling
modes.

Because our simulation and analytic model share their statistical
assumptions *exactly* (the paper's SES model had additional structure), the
deterministic mode agrees to floating point and the stochastic mode to
binomial sampling noise — comfortably inside the paper's 5–18 % envelope.
The experiment records both, which is the honest comparison available
without the original SES sources.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ..params import Table1Params
from . import analytic
from .simulation import HwlwSimConfig, simulate_hybrid

__all__ = ["ValidationPoint", "ValidationReport", "validate_against_analytic"]


@dataclasses.dataclass(frozen=True)
class ValidationPoint:
    """One grid point's sim/analytic comparison."""

    lwp_fraction: float
    n_nodes: int
    simulated_cycles: float
    analytic_cycles: float

    @property
    def relative_error(self) -> float:
        """|sim − analytic| / analytic."""
        return abs(self.simulated_cycles - self.analytic_cycles) / (
            self.analytic_cycles
        )

    def to_dict(self) -> dict:
        return {
            "lwp_fraction": self.lwp_fraction,
            "n_nodes": self.n_nodes,
            "simulated_cycles": self.simulated_cycles,
            "analytic_cycles": self.analytic_cycles,
            "relative_error": self.relative_error,
        }


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """Aggregate of the validation grid."""

    points: _t.Tuple[ValidationPoint, ...]
    stochastic: bool

    @property
    def max_relative_error(self) -> float:
        return max(p.relative_error for p in self.points)

    @property
    def mean_relative_error(self) -> float:
        return float(np.mean([p.relative_error for p in self.points]))

    @property
    def within_paper_envelope(self) -> bool:
        """True if every point is at least as accurate as the paper's 18%."""
        return self.max_relative_error <= 0.18

    def to_rows(self) -> _t.List[dict]:
        return [p.to_dict() for p in self.points]


def validate_against_analytic(
    params: _t.Optional[Table1Params] = None,
    lwp_fractions: _t.Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9, 1.0),
    node_counts: _t.Sequence[int] = (1, 2, 4, 8, 32, 64),
    stochastic: bool = True,
    seed: int = 0,
    chunk_ops: int = 100_000,
) -> ValidationReport:
    """Compare DES completion times against the closed-form model.

    Parameters mirror the sweep defaults; ``stochastic=False`` checks the
    structural agreement (expected to be exact), ``stochastic=True`` the
    sampling-noise envelope.
    """
    params = params or Table1Params()
    config = HwlwSimConfig(
        stochastic=stochastic, seed=seed, chunk_ops=chunk_ops
    )
    points = []
    for f in lwp_fractions:
        for n in node_counts:
            sim_cycles = simulate_hybrid(
                params, f, n, config
            ).completion_cycles
            ana_cycles = float(analytic.test_time(f, n, params))
            points.append(
                ValidationPoint(
                    lwp_fraction=float(f),
                    n_nodes=int(n),
                    simulated_cycles=sim_cycles,
                    analytic_cycles=ana_cycles,
                )
            )
    return ValidationReport(points=tuple(points), stochastic=stochastic)
