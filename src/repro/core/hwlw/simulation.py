"""Queuing simulation of the PIM-augmented system (paper §3.1, Figs. 1–4).

The model mirrors the paper's SES/workbench structure:

* an **HWP service chain** (Fig. 2): instruction issue, cache access for
  the load/store mix, main-memory access on a miss — modeled as a CPU
  process plus a memory-port :class:`~repro.desim.resources.Resource`;
* an **LWP array** (Fig. 3): ``N`` PIM nodes, each a processor physically
  adjacent to its own memory bank (no cache; short access time; the
  workload precludes bank conflicts, as the paper notes);
* the **Fig. 4 thread timeline**: alternating sections — the HWP executes
  its high-locality region, then forks the section's low-locality work
  into ``N`` uniform LWP threads and joins them.

Operations are executed in *chunks*: a chunk of ``k`` operations samples
its load/store count and miss count binomially (or uses expectations in
deterministic mode) and advances time accordingly.  Chunking keeps the
event count tractable at the paper's ``W = 10^8`` operations while leaving
the statistics of the total time exact in expectation.

The module also simulates the **control run** (HWP performs *all* work;
the no-reuse fraction misses at ``control_miss_rate``), from which Fig. 5's
performance gain is computed.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ...desim import RandomStreams, Resource, Simulator
from ..params import Table1Params
from .workload import OperationMixSampler, PhasedWorkload

__all__ = [
    "HwlwSimConfig",
    "ComponentStats",
    "HybridSimResult",
    "ControlSimResult",
    "HybridSystemModel",
    "simulate_hybrid",
    "simulate_control",
]


@dataclasses.dataclass(frozen=True)
class HwlwSimConfig:
    """Run-control knobs for the HWP/LWP queuing simulation.

    Attributes
    ----------
    sections:
        Number of HWP-then-LWP alternations (Fig. 4 structure).
    chunk_ops:
        Operations per simulated chunk; larger is faster, smaller gives a
        finer-grained trajectory.  Results are unbiased either way.
    stochastic:
        Binomial sampling (True) or expected-value mode (False).
    seed:
        Root seed for the per-component random streams.
    overlap:
        Extension (see :mod:`repro.core.hwlw.extensions`): run each
        section's HWP and LWP regions concurrently instead of the
        paper's strict alternation.
    thread_skew:
        Extension: linear LWP load-imbalance severity in [0, 1);
        ``0.0`` is the paper's uniform thread split.
    """

    sections: int = 8
    chunk_ops: int = 100_000
    stochastic: bool = True
    seed: int = 0
    overlap: bool = False
    thread_skew: float = 0.0

    def __post_init__(self) -> None:
        if self.sections < 1:
            raise ValueError("sections must be >= 1")
        if self.chunk_ops < 1:
            raise ValueError("chunk_ops must be >= 1")
        if not 0.0 <= self.thread_skew < 1.0:
            raise ValueError("thread_skew must be in [0, 1)")


@dataclasses.dataclass(frozen=True)
class ComponentStats:
    """Execution statistics for one processor (HWP or one LWP node)."""

    ops_executed: float
    busy_cycles: float
    memory_accesses: float
    cache_misses: float

    def cycles_per_op(self) -> float:
        return self.busy_cycles / self.ops_executed if self.ops_executed else float("nan")


@dataclasses.dataclass(frozen=True)
class HybridSimResult:
    """Outcome of one PIM-augmented (test-system) simulation run."""

    params: Table1Params
    lwp_fraction: float
    n_nodes: int
    completion_cycles: float
    hwp: ComponentStats
    lwp_nodes: _t.Tuple[ComponentStats, ...]
    section_cycles: _t.Tuple[float, ...]

    @property
    def completion_ns(self) -> float:
        return self.completion_cycles * self.params.hwp_cycle_ns

    @property
    def lwp_total_ops(self) -> float:
        return sum(n.ops_executed for n in self.lwp_nodes)

    @property
    def total_ops(self) -> float:
        return self.hwp.ops_executed + self.lwp_total_ops

    @property
    def lwp_phase_cycles(self) -> float:
        """Aggregate time spent in LWP phases (array busy, HWP waiting)."""
        return self.completion_cycles - self.hwp.busy_cycles

    def to_dict(self) -> dict:
        return {
            "lwp_fraction": self.lwp_fraction,
            "n_nodes": self.n_nodes,
            "completion_cycles": self.completion_cycles,
            "completion_ns": self.completion_ns,
            "hwp_ops": self.hwp.ops_executed,
            "lwp_ops": self.lwp_total_ops,
        }


@dataclasses.dataclass(frozen=True)
class ControlSimResult:
    """Outcome of one control-run simulation (HWP does everything)."""

    params: Table1Params
    lwp_fraction: float
    completion_cycles: float
    hwp: ComponentStats

    @property
    def completion_ns(self) -> float:
        return self.completion_cycles * self.params.hwp_cycle_ns

    def to_dict(self) -> dict:
        return {
            "lwp_fraction": self.lwp_fraction,
            "completion_cycles": self.completion_cycles,
            "completion_ns": self.completion_ns,
        }


class _ChunkedProcessor:
    """Shared chunk-execution helper for HWP and LWP node processes.

    Accumulates per-component statistics; the owning process drives
    :meth:`execute` inside the simulation.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        sampler: OperationMixSampler,
        rng: _t.Optional[np.random.Generator],
        chunk_ops: int,
        issue_cycles: float,
        access_cycles_hit: float,
        miss_penalty_cycles: float,
        memory_port: _t.Optional[Resource] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.sampler = sampler
        self.rng = rng
        self.chunk_ops = chunk_ops
        self.issue_cycles = issue_cycles
        self.access_cycles_hit = access_cycles_hit
        self.miss_penalty_cycles = miss_penalty_cycles
        self.memory_port = memory_port
        self.ops_executed = 0.0
        self.busy_cycles = 0.0
        self.memory_accesses = 0.0
        self.cache_misses = 0.0

    def chunk_time(self, ops: float) -> _t.Tuple[float, float, float, float]:
        """Sample one chunk; returns (compute, memory, n_ls, n_miss)."""
        n_ls, n_miss = self.sampler.sample(ops, self.rng)
        compute = ops * self.issue_cycles
        memory = (
            n_ls * (self.access_cycles_hit - self.issue_cycles)
            + n_miss * self.miss_penalty_cycles
        )
        return compute, memory, n_ls, n_miss

    def execute(self, ops: float):
        """Process generator: execute ``ops`` operations in chunks."""
        remaining = ops
        while remaining > 0:
            batch = min(remaining, float(self.chunk_ops))
            compute, memory, n_ls, n_miss = self.chunk_time(batch)
            self.sim.trace(
                "chunk", component=self.name, ops=batch, memory=memory
            )
            yield self.sim.timeout(compute)
            if memory > 0.0:
                if self.memory_port is not None:
                    with self.memory_port.request() as req:
                        yield req
                        yield self.sim.timeout(memory)
                else:
                    yield self.sim.timeout(memory)
            self.ops_executed += batch
            self.busy_cycles += compute + memory
            self.memory_accesses += n_ls
            self.cache_misses += n_miss
            remaining -= batch

    def stats(self) -> ComponentStats:
        return ComponentStats(
            ops_executed=self.ops_executed,
            busy_cycles=self.busy_cycles,
            memory_accesses=self.memory_accesses,
            cache_misses=self.cache_misses,
        )


class HybridSystemModel:
    """DES model of HWP + N-LWP execution over the Fig. 4 timeline.

    Build then :meth:`run`; reusable only once (one simulation per
    instance, matching the single-trajectory semantics of the engine).

    Parameters
    ----------
    params:
        Table 1 parameters.
    lwp_fraction:
        ``%WL`` in [0, 1].
    n_nodes:
        LWP node count ``N`` >= 1.
    config:
        Run-control knobs (:class:`HwlwSimConfig`).
    """

    def __init__(
        self,
        params: Table1Params,
        lwp_fraction: float,
        n_nodes: int,
        config: _t.Optional[HwlwSimConfig] = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.params = params
        self.lwp_fraction = float(lwp_fraction)
        self.n_nodes = int(n_nodes)
        self.config = config or HwlwSimConfig()
        self.workload = PhasedWorkload(
            params, self.lwp_fraction, self.config.sections
        )
        self.sim = Simulator()
        self._streams = RandomStreams(self.config.seed)
        self._result: _t.Optional[HybridSimResult] = None

        stoch = self.config.stochastic
        p = params
        self._hwp = _ChunkedProcessor(
            self.sim,
            "hwp",
            OperationMixSampler(p.ls_mix, p.miss_rate, stoch),
            self._streams.stream("hwp") if stoch else None,
            self.config.chunk_ops,
            issue_cycles=1.0,
            access_cycles_hit=p.hwp_cache_cycles,
            miss_penalty_cycles=p.hwp_memory_cycles,
            memory_port=Resource(self.sim, 1, "hwp.memport"),
        )
        # LWPs: no cache — *every* load/store goes to the adjacent bank at
        # TML; modeled as mix sampling with miss_rate=0 and the full
        # hit-vs-issue differential folded into access_cycles_hit.
        self._lwps = [
            _ChunkedProcessor(
                self.sim,
                f"lwp.{i}",
                OperationMixSampler(p.ls_mix, 0.0, stoch),
                self._streams.stream(f"lwp.{i}") if stoch else None,
                self.config.chunk_ops,
                issue_cycles=p.lwp_cycle_cycles,
                access_cycles_hit=p.lwp_memory_cycles,
                miss_penalty_cycles=0.0,
                memory_port=Resource(self.sim, 1, f"lwp.{i}.memport"),
            )
            for i in range(self.n_nodes)
        ]
        self._section_cycles: _t.List[float] = []

    # ------------------------------------------------------------------
    def _coordinator(self):
        """Fig. 4: for each section, HWP region then forked LWP region.

        With the ``overlap`` extension the two regions of a section run
        concurrently and the section joins on both.
        """
        sim = self.sim
        for section in self.workload.sections:
            start = sim.now
            shares = (
                self.workload.split_lwp_ops(
                    section, self.n_nodes, skew=self.config.thread_skew
                )
                if section.lwp_ops > 0
                else []
            )
            if self.config.overlap:
                waits = []
                if section.hwp_ops > 0:
                    waits.append(
                        sim.process(
                            self._hwp.execute(section.hwp_ops),
                            name="hwp.region",
                        )
                    )
                waits.extend(
                    sim.process(
                        lwp.execute(share), name=f"{lwp.name}.thread"
                    )
                    for lwp, share in zip(self._lwps, shares)
                    if share > 0
                )
                if waits:
                    yield sim.all_of(waits)
            else:
                if section.hwp_ops > 0:
                    yield from self._hwp.execute(section.hwp_ops)
                if section.lwp_ops > 0:
                    threads = [
                        sim.process(
                            lwp.execute(share), name=f"{lwp.name}.thread"
                        )
                        for lwp, share in zip(self._lwps, shares)
                    ]
                    yield sim.all_of(threads)
            self._section_cycles.append(sim.now - start)

    def run(self) -> HybridSimResult:
        """Execute the simulation and return (cached) results."""
        if self._result is None:
            done = self.sim.process(self._coordinator(), name="coordinator")
            self.sim.run(done)
            self._result = HybridSimResult(
                params=self.params,
                lwp_fraction=self.lwp_fraction,
                n_nodes=self.n_nodes,
                completion_cycles=self.sim.now,
                hwp=self._hwp.stats(),
                lwp_nodes=tuple(l.stats() for l in self._lwps),
                section_cycles=tuple(self._section_cycles),
            )
        return self._result


def simulate_hybrid(
    params: _t.Optional[Table1Params] = None,
    lwp_fraction: float = 0.5,
    n_nodes: int = 8,
    config: _t.Optional[HwlwSimConfig] = None,
) -> HybridSimResult:
    """One-call wrapper: build and run a :class:`HybridSystemModel`.

    Examples
    --------
    >>> cfg = HwlwSimConfig(stochastic=False)
    >>> r = simulate_hybrid(lwp_fraction=0.0, n_nodes=4, config=cfg)
    >>> r.completion_cycles == 4.0 * r.params.total_work  # 4 cycles/op
    True
    """
    params = params or Table1Params()
    return HybridSystemModel(params, lwp_fraction, n_nodes, config).run()


def simulate_control(
    params: _t.Optional[Table1Params] = None,
    lwp_fraction: float = 0.5,
    config: _t.Optional[HwlwSimConfig] = None,
) -> ControlSimResult:
    """Simulate the control run: the HWP executes *all* the work.

    The high-locality fraction runs at ``Pmiss``; the no-reuse fraction
    (which the test system would offload to PIM) runs at
    ``control_miss_rate`` — by construction it has no data reuse for the
    cache to exploit.
    """
    params = params or Table1Params()
    config = config or HwlwSimConfig()
    sim = Simulator()
    streams = RandomStreams(config.seed)
    stoch = config.stochastic

    high = _ChunkedProcessor(
        sim,
        "hwp.high",
        OperationMixSampler(params.ls_mix, params.miss_rate, stoch),
        streams.stream("control.high") if stoch else None,
        config.chunk_ops,
        issue_cycles=1.0,
        access_cycles_hit=params.hwp_cache_cycles,
        miss_penalty_cycles=params.hwp_memory_cycles,
    )
    low = _ChunkedProcessor(
        sim,
        "hwp.low",
        OperationMixSampler(params.ls_mix, params.control_miss_rate, stoch),
        streams.stream("control.low") if stoch else None,
        config.chunk_ops,
        issue_cycles=1.0,
        access_cycles_hit=params.hwp_cache_cycles,
        miss_penalty_cycles=params.hwp_memory_cycles,
    )
    workload = PhasedWorkload(params, lwp_fraction, config.sections)

    def control():
        for section in workload.sections:
            if section.hwp_ops > 0:
                yield from high.execute(section.hwp_ops)
            if section.lwp_ops > 0:
                yield from low.execute(section.lwp_ops)

    done = sim.process(control(), name="control")
    sim.run(done)
    merged = ComponentStats(
        ops_executed=high.ops_executed + low.ops_executed,
        busy_cycles=high.busy_cycles + low.busy_cycles,
        memory_accesses=high.memory_accesses + low.memory_accesses,
        cache_misses=high.cache_misses + low.cache_misses,
    )
    return ControlSimResult(
        params=params,
        lwp_fraction=lwp_fraction,
        completion_cycles=sim.now,
        hwp=merged,
    )
