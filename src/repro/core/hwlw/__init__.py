"""repro.core.hwlw — the HWP/LWP partitioning study (paper §3).

Contents:

* :mod:`~repro.core.hwlw.analytic` — the closed-form model
  (``Time_relative``, the break-even node count ``NB``, performance gain);
* :mod:`~repro.core.hwlw.workload` — the Fig. 4 phased statistical workload;
* :mod:`~repro.core.hwlw.simulation` — the queuing simulation of Figs. 1–3;
* :mod:`~repro.core.hwlw.sweep` — parameter sweeps for Figs. 5–7;
* :mod:`~repro.core.hwlw.validation` — sim-vs-analytic accuracy (§3.1.2);
* :mod:`~repro.core.hwlw.tml` — ``TML`` derived from simulated
  :mod:`repro.memsys` per-request latencies instead of the Table 1
  constant.
"""

from .analytic import (
    control_time,
    crossover_width,
    hwp_cycles_per_op,
    lwp_cycles_per_op,
    nb_parameter,
    performance_gain,
    response_time_cycles,
    speedup_vs_no_lwp,
    test_time,
    time_relative,
)
from .extensions import (
    overlap_crossover_fraction,
    skewed_thread_shares,
    time_relative_overlapped,
    time_relative_skewed,
)
from .simulation import (
    ComponentStats,
    ControlSimResult,
    HwlwSimConfig,
    HybridSimResult,
    HybridSystemModel,
    simulate_control,
    simulate_hybrid,
)
from .sweep import (
    PAPER_LWP_FRACTIONS,
    PAPER_NODE_COUNTS,
    SweepGrid,
    figure5_gain_sweep,
    figure6_response_time_sweep,
    figure7_normalized_time_sweep,
    section_ablation_sweep,
)
from .tml import TmlDerivation, derive_tml_params
from .validation import (
    ValidationPoint,
    ValidationReport,
    validate_against_analytic,
)
from .workload import OperationMixSampler, PhasedWorkload, WorkSection

__all__ = [
    "control_time",
    "crossover_width",
    "hwp_cycles_per_op",
    "lwp_cycles_per_op",
    "nb_parameter",
    "performance_gain",
    "response_time_cycles",
    "speedup_vs_no_lwp",
    "test_time",
    "time_relative",
    "ComponentStats",
    "ControlSimResult",
    "HwlwSimConfig",
    "HybridSimResult",
    "HybridSystemModel",
    "simulate_control",
    "simulate_hybrid",
    "PAPER_LWP_FRACTIONS",
    "PAPER_NODE_COUNTS",
    "SweepGrid",
    "figure5_gain_sweep",
    "figure6_response_time_sweep",
    "figure7_normalized_time_sweep",
    "section_ablation_sweep",
    "TmlDerivation",
    "derive_tml_params",
    "ValidationPoint",
    "ValidationReport",
    "validate_against_analytic",
    "OperationMixSampler",
    "PhasedWorkload",
    "WorkSection",
    "overlap_crossover_fraction",
    "skewed_thread_shares",
    "time_relative_overlapped",
    "time_relative_skewed",
]
