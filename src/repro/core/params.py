"""Parameter sets for the paper's two parametric studies.

:class:`Table1Params` transcribes Table 1 of the paper (the HWP/LWP
partitioning study, §3); :class:`ParcelParams` parameterizes the parcel
split-transaction study (§4).  Both are frozen dataclasses with validation,
so a parameter point is hashable and can key caches / result tables.

Times are normalized the way the paper normalizes them: *all* durations are
expressed in heavyweight-processor (HWP) clock cycles; with the Table 1
defaults one HWP cycle is 1 ns, so cycle counts and nanoseconds coincide.
"""

from __future__ import annotations

import dataclasses
import typing as _t

__all__ = ["Table1Params", "ParcelParams"]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclasses.dataclass(frozen=True)
class Table1Params:
    """Parametric assumptions of the HWP/LWP study (paper Table 1).

    Attributes
    ----------
    total_work:
        ``W`` — total operations split between HWP and LWP work
        (default 100,000,000).
    hwp_cycle_ns:
        ``THcycle`` — heavyweight cycle time in nanoseconds (1 ns).  This
        is the time base: everything else is in HWP cycles.
    lwp_cycle_cycles:
        ``TLcycle`` — lightweight cycle time, in HWP cycles (5 ns / 1 ns = 5).
    hwp_memory_cycles:
        ``TMH`` — HWP main-memory access time on a cache miss (90 cycles).
    hwp_cache_cycles:
        ``TCH`` — HWP cache access time (2 cycles).
    lwp_memory_cycles:
        ``TML`` — LWP (PIM) local memory access time (30 cycles); the LWP
        has no cache but sits next to the DRAM row buffer.
    miss_rate:
        ``Pmiss`` — HWP cache miss rate for *high-temporal-locality* work
        (0.1).
    ls_mix:
        ``mix_{l/s}`` — fraction of operations that are loads/stores (0.30).
    control_miss_rate:
        Cache miss rate experienced by the HWP when the *low-locality*
        fraction of the workload is forced onto it in the control run.
        The paper assigns work to PIM exactly "when data accesses exhibit
        no reuse", so the control's cache cannot help on that fraction:
        default 1.0 (every access misses).

    Notes
    -----
    Derived quantities (cycles per operation, the ``NB`` break-even node
    count) live in :mod:`repro.core.hwlw.analytic`.
    """

    total_work: int = 100_000_000
    hwp_cycle_ns: float = 1.0
    lwp_cycle_cycles: float = 5.0
    hwp_memory_cycles: float = 90.0
    hwp_cache_cycles: float = 2.0
    lwp_memory_cycles: float = 30.0
    miss_rate: float = 0.1
    ls_mix: float = 0.30
    control_miss_rate: float = 1.0

    def __post_init__(self) -> None:
        _require(self.total_work > 0, "total_work must be positive")
        _require(self.hwp_cycle_ns > 0, "hwp_cycle_ns must be positive")
        _require(
            self.lwp_cycle_cycles >= 1.0,
            "lwp_cycle_cycles is measured in HWP cycles and the LWP is "
            "not faster than the HWP in this study (need >= 1)",
        )
        _require(
            self.hwp_cache_cycles >= 1.0,
            "hwp_cache_cycles must be >= 1 (an access costs at least a cycle)",
        )
        _require(
            self.hwp_memory_cycles >= 0.0,
            "hwp_memory_cycles must be non-negative",
        )
        _require(
            self.lwp_memory_cycles >= 0.0,
            "lwp_memory_cycles must be non-negative",
        )
        _require(0.0 <= self.miss_rate <= 1.0, "miss_rate must be in [0, 1]")
        _require(
            0.0 <= self.control_miss_rate <= 1.0,
            "control_miss_rate must be in [0, 1]",
        )
        _require(0.0 <= self.ls_mix <= 1.0, "ls_mix must be in [0, 1]")

    # ------------------------------------------------------------------
    @property
    def lwp_cycle_ns(self) -> float:
        """Lightweight cycle time in nanoseconds."""
        return self.lwp_cycle_cycles * self.hwp_cycle_ns

    def with_(self, **changes: object) -> "Table1Params":
        """A modified copy (convenience around :func:`dataclasses.replace`)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def to_dict(self) -> _t.Dict[str, object]:
        """Plain-dict view, for CSV/JSON export."""
        return dataclasses.asdict(self)

    @staticmethod
    def paper_rows() -> _t.List[_t.Tuple[str, str, str]]:
        """The rows of paper Table 1 as (symbol, description, value)."""
        return [
            ("W", "total work = WH + WL", "100,000,000 operations"),
            ("%WH", "percent heavyweight work", "varied 0% to 100%"),
            ("%WL", "percent lightweight work", "varied 0% to 100%"),
            ("THcycle", "heavyweight cycle time", "1 nsec"),
            ("TLcycle", "lightweight cycle time", "5 nsec"),
            ("TMH", "heavyweight memory access time", "90 cycles"),
            ("TCH", "heavyweight cache access time", "2 cycles"),
            ("TML", "lightweight memory access time", "30 cycles"),
            ("Pmiss", "heavyweight cache miss rate", "0.1"),
            ("mixl/s", "instruction mix for load and store ops", "0.30"),
        ]


@dataclasses.dataclass(frozen=True)
class ParcelParams:
    """Parameters of the parcel split-transaction study (paper §4.2).

    The paper keeps "clock rate, peak instruction issue rate, instruction
    mix, system wide latency ... and the degree of remote accesses" equal
    between the blocking message-passing *control* system and the parcel
    *test* system; only the execution discipline differs.  Overheads are
    charged identically where the two systems do identical things (message
    send/receive); the test system additionally pays a context-switch cost
    when it swaps parcel contexts — the "efficient parcel handling
    mechanisms" knob the paper's conclusions call out.

    Attributes
    ----------
    n_nodes:
        Number of PIM nodes in both systems.
    parallelism:
        Degree of parallelism of the test system: concurrent parcel
        contexts (threads) per node.  The control system always has one
        thread per node.
    remote_fraction:
        Fraction of memory accesses that target a remote node (uniform
        over the other nodes).  Forced to 0 for single-node systems.
    latency_cycles:
        One-way, flat (fixed-delay) network latency in cycles.
    memory_cycles:
        Local memory access service time (the LWP's ``TML`` = 30).
    ls_mix:
        Fraction of operations that are memory accesses (0.30, as Table 1).
    send_overhead_cycles:
        Processor cycles to compose and inject a message/parcel (both
        systems).
    receive_overhead_cycles:
        Processor cycles to accept and assimilate a message/parcel (both
        systems).
    context_switch_cycles:
        Test system only: cycles to switch between parcel contexts.
    max_block_accesses:
        Modeling knob: local work is batched between consecutive remote
        accesses for event efficiency; this caps the batch length (only
        relevant when ``remote_fraction`` is 0 or tiny).
    """

    n_nodes: int = 8
    parallelism: int = 8
    remote_fraction: float = 0.2
    latency_cycles: float = 100.0
    memory_cycles: float = 30.0
    ls_mix: float = 0.3
    send_overhead_cycles: float = 2.0
    receive_overhead_cycles: float = 2.0
    context_switch_cycles: float = 1.0
    max_block_accesses: int = 1024

    def __post_init__(self) -> None:
        _require(self.n_nodes >= 1, "n_nodes must be >= 1")
        _require(self.parallelism >= 1, "parallelism must be >= 1")
        _require(
            0.0 <= self.remote_fraction <= 1.0,
            "remote_fraction must be in [0, 1]",
        )
        _require(
            self.latency_cycles >= 0.0, "latency_cycles must be non-negative"
        )
        _require(
            self.memory_cycles >= 0.0, "memory_cycles must be non-negative"
        )
        _require(0.0 < self.ls_mix <= 1.0, "ls_mix must be in (0, 1]")
        _require(
            self.send_overhead_cycles >= 0.0,
            "send_overhead_cycles must be non-negative",
        )
        _require(
            self.receive_overhead_cycles >= 0.0,
            "receive_overhead_cycles must be non-negative",
        )
        _require(
            self.context_switch_cycles >= 0.0,
            "context_switch_cycles must be non-negative",
        )
        _require(
            self.max_block_accesses >= 1, "max_block_accesses must be >= 1"
        )

    # ------------------------------------------------------------------
    @property
    def effective_remote_fraction(self) -> float:
        """Remote fraction after the single-node correction."""
        return self.remote_fraction if self.n_nodes > 1 else 0.0

    @property
    def round_trip_cycles(self) -> float:
        """Two network traversals (request out, response back)."""
        return 2.0 * self.latency_cycles

    def with_(self, **changes: object) -> "ParcelParams":
        """A modified copy (convenience around :func:`dataclasses.replace`)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def to_dict(self) -> _t.Dict[str, object]:
        """Plain-dict view, for CSV/JSON export."""
        return dataclasses.asdict(self)
