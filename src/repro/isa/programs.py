"""Library of assembly kernels for the functional PIM system.

Each builder returns a :class:`KernelBinary`: assembled code, a setup
function that deposits input data into a :class:`PimSystem`'s global
memory, spawn instructions, and a verifier for the expected result.
The kernels mirror the workload families the paper's introduction
motivates — dense streaming (high spatial locality), irregular
pointer-chasing and scattered updates (no locality; PIM's home turf) —
and the parallel ones exercise parcels exactly as §4 describes.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from .assembler import Program, assemble

if _t.TYPE_CHECKING:  # pragma: no cover
    from .multinode import PimSystem

__all__ = [
    "KernelBinary",
    "vector_sum_program",
    "simd_vector_sum_program",
    "pointer_chase_program",
    "parallel_sum_program",
    "gups_program",
]


@dataclasses.dataclass(frozen=True)
class KernelBinary:
    """A runnable kernel: program + memory setup + spawns + verifier."""

    name: str
    program: Program
    setup: _t.Callable[["PimSystem"], None]
    spawns: _t.Tuple[_t.Tuple[int, str, int, int], ...]  # (node, label, r1, r2)
    verify: _t.Callable[["PimSystem"], bool]
    expected: _t.Mapping[str, int]

    def launch(self, system: "PimSystem") -> None:
        """Load, set up and spawn this kernel on ``system``."""
        system.load(self.program)
        self.setup(system)
        for node, label, r1, r2 in self.spawns:
            system.spawn(node, label, r1=r1, r2=r2)


def vector_sum_program(
    base: int = 16, count: int = 32, result_addr: int = 8, seed: int = 1
) -> KernelBinary:
    """Single-thread sum of ``count`` consecutive words.

    Sequential addresses: on a multi-node system the stream crosses node
    boundaries, turning the tail of the loop into remote loads — a direct
    demonstration of transparent global addressing.
    """
    rng = np.random.default_rng(seed)
    values = rng.integers(-1000, 1000, size=count).tolist()
    expected_sum = int(sum(values))
    source = f"""
        li   r1, {base}        # cursor
        li   r2, {count}       # remaining
        li   r3, 0             # accumulator
    loop:
        ld   r4, r1, 0
        add  r3, r3, r4
        addi r1, r1, 1
        addi r2, r2, -1
        bne  r2, r0, loop
        li   r5, {result_addr}
        st   r3, r5, 0
        halt
    """
    program = assemble(source)

    def setup(system: "PimSystem") -> None:
        system.write_block(base, values)

    def verify(system: "PimSystem") -> bool:
        return system.read_word(result_addr) == expected_sum

    return KernelBinary(
        name="vector_sum",
        program=program,
        setup=setup,
        spawns=((0, "", 0, 0),),
        verify=verify,
        expected={"sum": expected_sum},
    )


def simd_vector_sum_program(
    base: int = 16, count: int = 32, result_addr: int = 8, seed: int = 1
) -> KernelBinary:
    """Wide-word SIMD sum: 4 words per row-buffer access (PIM Lite style).

    Same computation (and same data, given the same seed) as
    :func:`vector_sum_program`, but each ``vld`` moves VLEN=4 words in a
    single memory access and ``vadd`` accumulates 4 lanes per cycle —
    ~4x fewer memory accesses, demonstrating the §2.1 bandwidth reclaim
    at the ISA level.  ``count`` must be a multiple of 4.
    """
    if count % 4 != 0:
        raise ValueError("count must be a multiple of VLEN=4")
    rng = np.random.default_rng(seed)
    values = rng.integers(-1000, 1000, size=count).tolist()
    expected_sum = int(sum(values))
    source = f"""
        li   r1, {base}        # cursor
        li   r2, {count // 4}  # wide-word iterations
        li   r8, 0             # lane accumulators r8..r11
        li   r9, 0
        li   r10, 0
        li   r11, 0
    loop:
        vld  r4, r1, 0         # r4..r7 <- 4 words, one row access
        vadd r8, r8, r4
        addi r1, r1, 4
        addi r2, r2, -1
        bne  r2, r0, loop
        add  r3, r8, r9        # horizontal lane reduction
        add  r3, r3, r10
        add  r3, r3, r11
        li   r5, {result_addr}
        st   r3, r5, 0
        halt
    """
    program = assemble(source)

    def setup(system: "PimSystem") -> None:
        system.write_block(base, values)

    def verify(system: "PimSystem") -> bool:
        return system.read_word(result_addr) == expected_sum

    return KernelBinary(
        name="simd_vector_sum",
        program=program,
        setup=setup,
        spawns=((0, "", 0, 0),),
        verify=verify,
        expected={"sum": expected_sum},
    )


def pointer_chase_program(
    nodes_start: int = 64,
    chain_length: int = 24,
    result_addr: int = 8,
    seed: int = 2,
    spread_words: int = 512,
) -> KernelBinary:
    """Follow a linked chain of ``chain_length`` pointers, summing payloads.

    Each element is two words: ``[next_ptr, payload]``, scattered
    pseudo-randomly through global memory — the no-temporal-locality
    access pattern that motivates PIM (§1), and a latency-bound worst
    case for cache hierarchies.
    """
    rng = np.random.default_rng(seed)
    slots = rng.permutation(spread_words // 2)[:chain_length]
    addresses = [int(nodes_start + 2 * s) for s in slots]
    payloads = rng.integers(1, 100, size=chain_length).tolist()
    expected_sum = int(sum(payloads))

    source = f"""
        # r1 = current element address (0 terminates)
        li   r3, 0             # accumulator
        li   r2, {chain_length}
    chase:
        ld   r4, r1, 1         # payload
        add  r3, r3, r4
        ld   r1, r1, 0         # next pointer
        addi r2, r2, -1
        bne  r2, r0, chase
        li   r5, {result_addr}
        st   r3, r5, 0
        halt
    """
    program = assemble(source)

    def setup(system: "PimSystem") -> None:
        for i, addr in enumerate(addresses):
            nxt = addresses[i + 1] if i + 1 < len(addresses) else 0
            system.write_word(addr, nxt)
            system.write_word(addr + 1, payloads[i])

    def verify(system: "PimSystem") -> bool:
        return system.read_word(result_addr) == expected_sum

    return KernelBinary(
        name="pointer_chase",
        program=program,
        setup=setup,
        spawns=((0, "", addresses[0], 0),),
        verify=verify,
        expected={"sum": expected_sum},
    )


def parallel_sum_program(
    base: int = 64,
    count_per_worker: int = 16,
    n_workers: int = 4,
    result_addr: int = 8,
    done_addr: int = 9,
    seed: int = 3,
) -> KernelBinary:
    """Fork/join reduction with `invoke` parcels and `amo` combining.

    Worker ``i`` is *invoked at the node owning its stripe* (the
    "move work to the data" doctrine of parcels — Fig. 9), sums its
    stripe locally, fetch-adds the partial into a global accumulator and
    fetch-adds a done-counter the coordinator spins on.
    """
    rng = np.random.default_rng(seed)
    total = count_per_worker * n_workers
    values = rng.integers(0, 1000, size=total).tolist()
    expected_sum = int(sum(values))

    source = f"""
        # coordinator: r1 = base address of the data
        li   r6, {n_workers}   # workers to launch
        li   r7, 0             # launched so far
    launch:
        beq  r7, r6, wait
        li   r8, {count_per_worker}
        mul  r9, r7, r8
        add  r9, r1, r9        # stripe base -> owner node executes worker
        invoke r9, worker, r8
        addi r7, r7, 1
        jmp  launch
    wait:
        li   r10, {done_addr}
    spin:
        ld   r11, r10, 0
        bne  r11, r6, spin
        halt

    worker:
        # r1 = stripe base, r2 = stripe length
        li   r3, 0
    wloop:
        ld   r4, r1, 0
        add  r3, r3, r4
        addi r1, r1, 1
        addi r2, r2, -1
        bne  r2, r0, wloop
        li   r5, {result_addr}
        amo  r4, r5, r3        # add partial into global sum
        li   r5, {done_addr}
        li   r3, 1
        amo  r4, r5, r3        # signal completion
        halt
    """
    program = assemble(source)

    def setup(system: "PimSystem") -> None:
        system.write_block(base, values)
        system.write_word(result_addr, 0)
        system.write_word(done_addr, 0)

    def verify(system: "PimSystem") -> bool:
        return (
            system.read_word(result_addr) == expected_sum
            and system.read_word(done_addr) == n_workers
        )

    return KernelBinary(
        name="parallel_sum",
        program=program,
        setup=setup,
        spawns=((0, "", base, 0),),
        verify=verify,
        expected={"sum": expected_sum, "workers": n_workers},
    )


def gups_program(
    table_base: int = 256,
    table_words_log2: int = 6,
    updates: int = 64,
    stride: int = 13,
    result_addr: int = 8,
) -> KernelBinary:
    """GUPS-style scattered read-modify-writes over a distributed table.

    Walks the table with a co-prime stride (a deterministic stand-in for
    the RandomAccess index stream), fetch-adding 1 into each visited slot
    via ``amo`` — local or remote transparently.  The verifier checks
    update conservation: table increments must total ``updates``.
    """
    table_words = 1 << table_words_log2
    if stride % 2 == 0:
        raise ValueError("stride must be odd (co-prime with table size)")
    source = f"""
        # r1 = update count
        li   r3, 0             # index
        li   r5, {table_words - 1}   # mask
        li   r6, {table_base}
        li   r7, 1             # increment
    uloop:
        beq  r1, r0, done
        li   r4, {stride}
        add  r3, r3, r4
        and  r3, r3, r5
        add  r8, r6, r3        # slot address
        amo  r9, r8, r7
        addi r1, r1, -1
        jmp  uloop
    done:
        li   r8, {result_addr}
        st   r1, r8, 0         # r1 == 0 marks completion
        halt
    """
    program = assemble(source)

    def setup(system: "PimSystem") -> None:
        system.write_block(table_base, [0] * table_words)
        system.write_word(result_addr, -1)

    def verify(system: "PimSystem") -> bool:
        table = system.read_block(table_base, table_words)
        return (
            sum(table) == updates and system.read_word(result_addr) == 0
        )

    return KernelBinary(
        name="gups",
        program=program,
        setup=setup,
        spawns=((0, "", updates, 0),),
        verify=verify,
        expected={"updates": updates},
    )
