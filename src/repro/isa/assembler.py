"""Two-pass assembler for the PIM node instruction set.

Syntax
------
* one instruction per line: ``op arg1, arg2, ...``;
* labels: ``name:`` on their own line or prefixing an instruction;
* registers ``r0`` … ``r15``; immediates in decimal or ``0x…`` hex, with
  optional sign;
* comments from ``#`` or ``;`` to end of line;
* data directive ``.word ADDR V1 [V2 …]`` — deposit words into (global)
  memory at load time, ADDR increasing by one per value.

Example
-------
>>> prog = assemble('''
...     li   r1, 0          # accumulator
...     li   r2, 100        # base address
...     li   r3, 8          # count
... loop:
...     ld   r4, r2, 0
...     add  r1, r1, r4
...     addi r2, r2, 1
...     addi r3, r3, -1
...     bne  r3, r0, loop
...     halt
... ''')
>>> prog.labels['loop']
3
"""

from __future__ import annotations

import dataclasses
import re
import typing as _t

from .encoding import Instruction, OPCODES

__all__ = ["AssemblyError", "Program", "assemble"]


class AssemblyError(ValueError):
    """Raised on any syntax or semantic error, with a line number."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


@dataclasses.dataclass(frozen=True)
class Program:
    """Assembled program: instructions, label map, initial data."""

    instructions: _t.Tuple[Instruction, ...]
    labels: _t.Mapping[str, int]
    data: _t.Tuple[_t.Tuple[int, int], ...]  # (address, value) pairs
    source: str = ""

    def __len__(self) -> int:
        return len(self.instructions)

    def entry(self, label: str = "") -> int:
        """Instruction index of ``label`` (or 0 for the program start)."""
        if not label:
            return 0
        try:
            return self.labels[label]
        except KeyError:
            raise KeyError(
                f"unknown label {label!r}; defined: {sorted(self.labels)}"
            ) from None


_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_.]*):")
_REGISTER_RE = re.compile(r"^r([0-9]|1[0-5])$")
_IMM_RE = re.compile(r"^[+-]?(0x[0-9a-fA-F]+|[0-9]+)$")
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.strip()


def _parse_int(token: str, line_no: int) -> int:
    if not _IMM_RE.match(token):
        raise AssemblyError(line_no, f"expected integer, got {token!r}")
    return int(token, 0)


def assemble(source: str) -> Program:
    """Assemble ``source`` text into a :class:`Program`.

    Raises
    ------
    AssemblyError
        On unknown opcodes, malformed operands, duplicate or undefined
        labels — always with the offending line number.
    """
    labels: _t.Dict[str, int] = {}
    data: _t.List[_t.Tuple[int, int]] = []
    pending: _t.List[_t.Tuple[int, str, _t.List[str]]] = []

    # pass 1: labels, data, tokenization
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw)
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            name = match.group(1)
            if name in labels:
                raise AssemblyError(line_no, f"duplicate label {name!r}")
            labels[name] = len(pending)
            line = line[match.end():].strip()
        if not line:
            continue
        if line.startswith(".word"):
            tokens = line[len(".word"):].replace(",", " ").split()
            if len(tokens) < 2:
                raise AssemblyError(
                    line_no, ".word needs an address and at least one value"
                )
            addr = _parse_int(tokens[0], line_no)
            for offset, tok in enumerate(tokens[1:]):
                data.append((addr + offset, _parse_int(tok, line_no)))
            continue
        if line.startswith("."):
            raise AssemblyError(line_no, f"unknown directive {line.split()[0]!r}")
        parts = line.split(None, 1)
        op = parts[0].lower()
        if op not in OPCODES:
            raise AssemblyError(line_no, f"unknown opcode {op!r}")
        operand_text = parts[1] if len(parts) > 1 else ""
        tokens = [t.strip() for t in operand_text.split(",") if t.strip()]
        pending.append((line_no, op, tokens))

    # pass 2: operand resolution
    instructions: _t.List[Instruction] = []
    for line_no, op, tokens in pending:
        spec = OPCODES[op]
        if len(tokens) != len(spec.operands):
            raise AssemblyError(
                line_no,
                f"{op} expects {len(spec.operands)} operands "
                f"({spec.operands}), got {len(tokens)}",
            )
        args: _t.List[int] = []
        for kind, token in zip(spec.operands, tokens):
            if kind == "R":
                match = _REGISTER_RE.match(token)
                if not match:
                    raise AssemblyError(
                        line_no, f"expected register, got {token!r}"
                    )
                args.append(int(match.group(1)))
            elif kind == "I":
                args.append(_parse_int(token, line_no))
            else:  # label
                if _NAME_RE.match(token):
                    if token not in labels:
                        raise AssemblyError(
                            line_no, f"undefined label {token!r}"
                        )
                    args.append(labels[token])
                else:
                    args.append(_parse_int(token, line_no))
        instructions.append(Instruction(op, tuple(args)))

    return Program(
        instructions=tuple(instructions),
        labels=dict(labels),
        data=tuple(data),
        source=source,
    )
