"""Instruction set definition for the functional PIM node simulator.

The instruction set is modeled on the lightweight multithreaded PIM
architectures the paper builds on (EXECUBE, PIM Lite, the MDP): a small
RISC core per memory bank, cheap thread contexts, and parcel operations
for remote work.  Three operand kinds exist:

* ``R`` — register, ``r0`` … ``r15`` (``r0`` is hardwired zero);
* ``I`` — signed integer immediate;
* ``L`` — label (resolved to an instruction index by the assembler).

Memory is word-addressed over a single **global address space**: the
high-order bits of an address select the owning node (block distribution),
so ``ld``/``st``/``amo`` transparently become parcel round-trips when the
target word lives in another node's bank — the split-transaction behavior
of §4 made executable.

========= =========================== ==================================
opcode     operands                    semantics
========= =========================== ==================================
``li``     rd, imm                     rd <- imm
``add``    rd, ra, rb                  rd <- ra + rb
``addi``   rd, ra, imm                 rd <- ra + imm
``sub``    rd, ra, rb                  rd <- ra - rb
``mul``    rd, ra, rb                  rd <- ra * rb
``and``    rd, ra, rb                  bitwise and
``or``     rd, ra, rb                  bitwise or
``xor``    rd, ra, rb                  bitwise xor
``sll``    rd, ra, rb                  rd <- ra << (rb & 63)
``srl``    rd, ra, rb                  logical shift right
``slt``    rd, ra, rb                  rd <- 1 if ra < rb else 0
``slti``   rd, ra, imm                 rd <- 1 if ra < imm else 0
``ld``     rd, ra, imm                 rd <- mem[ra + imm]   (global)
``st``     rs, ra, imm                 mem[ra + imm] <- rs   (global)
``amo``    rd, ra, rb                  rd <- fetch_add(mem[ra], rb)
``beq``    ra, rb, label               branch if equal
``bne``    ra, rb, label               branch if not equal
``blt``    ra, rb, label               branch if ra < rb
``bge``    ra, rb, label               branch if ra >= rb
``jmp``    label                       unconditional branch
``spawn``  label, ra, rb               new local thread, r1=ra, r2=rb
``invoke`` ra, label, rb               parcel: spawn at owner(ra) with
                                       r1=ra, r2=rb (one-way)
``halt``                               end this thread
``vld``    rd, ra, imm                 rd..rd+3 <- mem[ra+imm .. +3]
``vst``    rs, ra, imm                 mem[ra+imm .. +3] <- rs..rs+3
``vadd``   rd, ra, rb                  lane-wise: rd+i <- ra+i + rb+i
========= =========================== ==================================

The ``v*`` instructions are the wide-word SIMD extension modeled on PIM
Lite (§2.2: "efficiently uses wide words out of memory to integrate
multithreading and fast parcel response with SIMD arithmetic
operations"): a vector register is a group of :data:`VLEN` consecutive
scalar registers, and one vector memory access moves :data:`VLEN` words
in a *single* row-buffer access time — the §2.1 bandwidth reclaim made
architectural.  Vector memory accesses must not cross a node boundary.
"""

from __future__ import annotations

import dataclasses
import typing as _t

__all__ = ["N_REGISTERS", "VLEN", "OPCODES", "OpSpec", "Instruction"]

#: Architected register count (r0 hardwired to zero).
N_REGISTERS = 16

#: SIMD width: a vector operand is VLEN consecutive scalar registers,
#: and a vector memory access moves VLEN consecutive words.
VLEN = 4


@dataclasses.dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode.

    Attributes
    ----------
    name:
        Mnemonic.
    operands:
        Operand kind string: each char one of ``R`` (register),
        ``I`` (immediate), ``L`` (label).
    kind:
        Execution class — ``alu``, ``memory``, ``branch``, ``thread`` —
        used for timing and statistics.
    """

    name: str
    operands: str
    kind: str


OPCODES: _t.Dict[str, OpSpec] = {
    spec.name: spec
    for spec in (
        OpSpec("li", "RI", "alu"),
        OpSpec("add", "RRR", "alu"),
        OpSpec("addi", "RRI", "alu"),
        OpSpec("sub", "RRR", "alu"),
        OpSpec("mul", "RRR", "alu"),
        OpSpec("and", "RRR", "alu"),
        OpSpec("or", "RRR", "alu"),
        OpSpec("xor", "RRR", "alu"),
        OpSpec("sll", "RRR", "alu"),
        OpSpec("srl", "RRR", "alu"),
        OpSpec("slt", "RRR", "alu"),
        OpSpec("slti", "RRI", "alu"),
        OpSpec("ld", "RRI", "memory"),
        OpSpec("st", "RRI", "memory"),
        OpSpec("amo", "RRR", "memory"),
        OpSpec("beq", "RRL", "branch"),
        OpSpec("bne", "RRL", "branch"),
        OpSpec("blt", "RRL", "branch"),
        OpSpec("bge", "RRL", "branch"),
        OpSpec("jmp", "L", "branch"),
        OpSpec("spawn", "LRR", "thread"),
        OpSpec("invoke", "RLR", "thread"),
        OpSpec("halt", "", "thread"),
        OpSpec("vld", "RRI", "memory"),
        OpSpec("vst", "RRI", "memory"),
        OpSpec("vadd", "RRR", "alu"),
    )
}

#: Opcodes whose register operands name a VLEN-register group, mapped to
#: the operand positions that are vector groups (others stay scalar —
#: e.g. the address register of vld/vst).
VECTOR_OPS: _t.Mapping[str, _t.Tuple[int, ...]] = {
    "vld": (0,),
    "vst": (0,),
    "vadd": (0, 1, 2),
}


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One decoded instruction: opcode plus resolved operands.

    Register operands are stored as register indices, label operands as
    instruction indices (the assembler resolves them), immediates as ints.
    """

    op: str
    args: _t.Tuple[int, ...]

    def __post_init__(self) -> None:
        spec = OPCODES.get(self.op)
        if spec is None:
            raise ValueError(f"unknown opcode {self.op!r}")
        if len(self.args) != len(spec.operands):
            raise ValueError(
                f"{self.op} expects {len(spec.operands)} operands, "
                f"got {len(self.args)}"
            )
        vector_positions = VECTOR_OPS.get(self.op, ())
        for position, (kind, value) in enumerate(
            zip(spec.operands, self.args)
        ):
            if kind == "R":
                limit = (
                    N_REGISTERS - VLEN + 1
                    if position in vector_positions
                    else N_REGISTERS
                )
                if not 0 <= value < limit:
                    raise ValueError(
                        f"register index {value} out of range in "
                        f"{self.op}"
                        + (
                            f" (vector group needs {VLEN} registers)"
                            if position in vector_positions
                            else ""
                        )
                    )
            if kind == "L" and value < 0:
                raise ValueError(f"label target {value} negative")

    @property
    def spec(self) -> OpSpec:
        return OPCODES[self.op]

    def __str__(self) -> str:
        spec = self.spec
        parts = []
        for kind, value in zip(spec.operands, self.args):
            parts.append(f"r{value}" if kind == "R" else str(value))
        return f"{self.op} " + ", ".join(parts) if parts else self.op
