"""repro.isa — a functional multithreaded PIM ISA simulator.

"PIM Lite"-style executable model of the architectures the paper builds
on (§2.2): per-bank RISC cores with cheap thread contexts, a global
block-distributed address space, and parcel-based remote access with
split-transaction thread switching.  Used to *ground* the statistical
parameters of the two parametric studies in real code (the
``calibration`` experiment) and as a runnable demonstration of
parcel-driven computing.

Quick tour
----------
* :func:`assemble` — two-pass assembler for the small RISC ISA;
* :class:`PimSystem` — n-node machine with parcels and global memory;
* :mod:`repro.isa.programs` — kernels (vector sum, pointer chase,
  parallel fork/join reduction, GUPS) with verifiers.
"""

from .assembler import AssemblyError, Program, assemble
from .encoding import Instruction, N_REGISTERS, OPCODES, OpSpec, VECTOR_OPS, VLEN
from .machine import IsaParams, IsaRuntimeError, PimNode, ThreadResult
from .multinode import PimSystem, SystemRunResult
from .programs import (
    KernelBinary,
    gups_program,
    parallel_sum_program,
    pointer_chase_program,
    simd_vector_sum_program,
    vector_sum_program,
)

__all__ = [
    "AssemblyError",
    "Program",
    "assemble",
    "Instruction",
    "N_REGISTERS",
    "OPCODES",
    "OpSpec",
    "VECTOR_OPS",
    "VLEN",
    "IsaParams",
    "IsaRuntimeError",
    "PimNode",
    "ThreadResult",
    "PimSystem",
    "SystemRunResult",
    "KernelBinary",
    "gups_program",
    "parallel_sum_program",
    "pointer_chase_program",
    "simd_vector_sum_program",
    "vector_sum_program",
]
