"""Functional PIM node: registers, threads, memory, parcel integration.

A :class:`PimNode` executes assembled programs on top of the DES engine
with the same split-transaction discipline the statistical study models
(§4): threads run on the node processor until they *halt* or touch a
**remote** word; a remote access composes a parcel, releases the
processor, and the node switches to the next ready thread or incident
parcel.  Timing parameters mirror the lightweight node of Table 1 (30-
cycle local memory, cheap thread contexts).

Instruction execution is functional (real registers, real memory).  ALU
and branch instructions are time-batched between memory operations; memory
side effects are applied at the simulated time they complete, so cross-
thread and cross-node memory interactions happen in the right order.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ..core.parcels.network import Network
from ..core.parcels.node import BUSY, IDLE, MEMORY, NodeCpu
from ..core.parcels.parcel import Parcel, ParcelKind
from ..desim import Simulator, Store
from .assembler import Program
from .encoding import Instruction, N_REGISTERS, VLEN

__all__ = ["IsaParams", "IsaRuntimeError", "ThreadResult", "PimNode"]

_MASK64 = (1 << 64) - 1


def _to_signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


@dataclasses.dataclass(frozen=True)
class IsaParams:
    """Configuration of the functional PIM system.

    Attributes
    ----------
    n_nodes / words_per_node:
        Global address space geometry: address ``a`` lives on node
        ``a // words_per_node`` (block distribution).
    issue_cycles:
        Cost of ALU/branch/thread instructions.
    memory_cycles:
        Local memory access time (Table 1's ``TML``).
    latency_cycles:
        One-way network latency for parcels.
    send_overhead_cycles / receive_overhead_cycles / context_switch_cycles:
        Parcel handling costs, as in :class:`~repro.core.params.ParcelParams`.
    max_thread_instructions:
        Runaway guard: a thread exceeding this instruction count fails
        the simulation with :class:`IsaRuntimeError`.
    """

    n_nodes: int = 4
    words_per_node: int = 4096
    issue_cycles: float = 1.0
    memory_cycles: float = 30.0
    latency_cycles: float = 100.0
    send_overhead_cycles: float = 2.0
    receive_overhead_cycles: float = 2.0
    context_switch_cycles: float = 1.0
    max_thread_instructions: int = 1_000_000

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.words_per_node < 1:
            raise ValueError("words_per_node must be >= 1")
        for field in (
            "issue_cycles",
            "memory_cycles",
            "latency_cycles",
            "send_overhead_cycles",
            "receive_overhead_cycles",
            "context_switch_cycles",
        ):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be non-negative")
        if self.max_thread_instructions < 1:
            raise ValueError("max_thread_instructions must be >= 1")

    @property
    def total_words(self) -> int:
        return self.n_nodes * self.words_per_node

    def owner(self, address: int) -> int:
        """Node owning a global word address."""
        if not 0 <= address < self.total_words:
            raise IsaRuntimeError(
                f"address {address} outside global memory "
                f"[0, {self.total_words})"
            )
        return address // self.words_per_node

    def local_offset(self, address: int) -> int:
        return address % self.words_per_node


class IsaRuntimeError(RuntimeError):
    """Raised for runtime faults: bad addresses, runaway threads."""


@dataclasses.dataclass
class ThreadResult:
    """Final state of one completed thread."""

    node: int
    thread_id: int
    registers: _t.Tuple[int, ...]
    instructions: int
    finished_at: float


class PimNode:
    """One PIM node: processor, memory bank, thread contexts, dispatcher.

    Created and wired by :class:`~repro.isa.multinode.PimSystem`; not
    normally instantiated directly.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: IsaParams,
        network: Network,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.network = network
        self.memory = np.zeros(params.words_per_node, dtype=np.int64)
        self.cpu = NodeCpu(sim, f"isa.{node_id}.cpu")
        self.program: _t.Optional[Program] = None
        self._pending: _t.Dict[int, object] = {}
        self._next_thread_id = 0
        self.completed_threads: _t.List[ThreadResult] = []
        self.instruction_counts: _t.Dict[str, int] = {}
        self.local_accesses = 0
        self.remote_accesses = 0
        self.parcels_serviced = 0
        sim.process(self._dispatcher(), name=f"isa.{node_id}.dispatch")

    # ------------------------------------------------------------------
    @property
    def mailbox(self) -> Store:
        return self.network.mailbox(self.node_id)

    def load(self, program: Program) -> None:
        """Install (replicate) the program code on this node."""
        self.program = program

    def read_local(self, offset: int) -> int:
        return int(self.memory[offset])

    def write_local(self, offset: int, value: int) -> None:
        self.memory[offset] = np.int64(_to_signed(value))

    def spawn_thread(self, entry: int, r1: int = 0, r2: int = 0):
        """Start a thread at instruction index ``entry``; returns Process."""
        if self.program is None:
            raise IsaRuntimeError(f"node {self.node_id} has no program")
        if not 0 <= entry <= len(self.program.instructions):
            raise IsaRuntimeError(f"entry {entry} outside program")
        tid = self._next_thread_id
        self._next_thread_id += 1
        return self.sim.process(
            self._thread(tid, entry, r1, r2),
            name=f"isa.{self.node_id}.t{tid}",
        )

    # ------------------------------------------------------------------
    # thread execution
    # ------------------------------------------------------------------
    def _count(self, instr: Instruction) -> None:
        kind = instr.spec.kind
        self.instruction_counts[kind] = (
            self.instruction_counts.get(kind, 0) + 1
        )

    def _thread(self, tid: int, entry: int, r1: int, r2: int):
        sim = self.sim
        p = self.params
        cpu = self.cpu
        program = _t.cast(Program, self.program)
        code = program.instructions
        regs = [0] * N_REGISTERS
        regs[1], regs[2] = _to_signed(r1), _to_signed(r2)
        pc = entry
        executed = 0

        req = cpu.acquire()
        yield req
        acc = 0.0  # batched ALU/branch time not yet charged
        while True:
            if pc >= len(code):
                raise IsaRuntimeError(
                    f"node {self.node_id} thread {tid}: PC {pc} fell off "
                    "the end of the program (missing halt?)"
                )
            instr = code[pc]
            executed += 1
            if executed > p.max_thread_instructions:
                raise IsaRuntimeError(
                    f"node {self.node_id} thread {tid}: exceeded "
                    f"{p.max_thread_instructions} instructions (runaway?)"
                )
            self._count(instr)
            op, args = instr.op, instr.args

            if op == "halt":
                acc += p.issue_cycles
                if acc > 0:
                    cpu.set_state(BUSY)
                    yield sim.timeout(acc)
                cpu.release(req)
                self.completed_threads.append(
                    ThreadResult(
                        node=self.node_id,
                        thread_id=tid,
                        registers=tuple(regs),
                        instructions=executed,
                        finished_at=sim.now,
                    )
                )
                return tuple(regs)

            if op == "vadd":
                # SIMD lane-wise add over VLEN-register groups
                a = args
                for lane in range(VLEN):
                    regs[a[0] + lane] = _to_signed(
                        regs[a[1] + lane] + regs[a[2] + lane]
                    )
                regs[0] = 0
                acc += p.issue_cycles
                pc += 1
                continue

            if instr.spec.kind == "alu":
                regs[0] = 0
                a = args
                if op == "li":
                    regs[a[0]] = _to_signed(a[1])
                elif op == "add":
                    regs[a[0]] = _to_signed(regs[a[1]] + regs[a[2]])
                elif op == "addi":
                    regs[a[0]] = _to_signed(regs[a[1]] + a[2])
                elif op == "sub":
                    regs[a[0]] = _to_signed(regs[a[1]] - regs[a[2]])
                elif op == "mul":
                    regs[a[0]] = _to_signed(regs[a[1]] * regs[a[2]])
                elif op == "and":
                    regs[a[0]] = _to_signed(regs[a[1]] & regs[a[2]])
                elif op == "or":
                    regs[a[0]] = _to_signed(regs[a[1]] | regs[a[2]])
                elif op == "xor":
                    regs[a[0]] = _to_signed(regs[a[1]] ^ regs[a[2]])
                elif op == "sll":
                    regs[a[0]] = _to_signed(
                        (regs[a[1]] & _MASK64) << (regs[a[2]] & 63)
                    )
                elif op == "srl":
                    regs[a[0]] = _to_signed(
                        (regs[a[1]] & _MASK64) >> (regs[a[2]] & 63)
                    )
                elif op == "slt":
                    regs[a[0]] = int(regs[a[1]] < regs[a[2]])
                elif op == "slti":
                    regs[a[0]] = int(regs[a[1]] < a[2])
                regs[0] = 0
                acc += p.issue_cycles
                pc += 1
                continue

            if instr.spec.kind == "branch":
                acc += p.issue_cycles
                if op == "jmp":
                    pc = args[0]
                else:
                    a, b, target = (
                        regs[args[0]],
                        regs[args[1]],
                        args[2],
                    )
                    taken = (
                        (op == "beq" and a == b)
                        or (op == "bne" and a != b)
                        or (op == "blt" and a < b)
                        or (op == "bge" and a >= b)
                    )
                    pc = target if taken else pc + 1
                continue

            if op == "spawn":
                acc += p.issue_cycles
                self.spawn_thread(
                    args[0], regs[args[1]], regs[args[2]]
                )
                pc += 1
                continue

            if op == "invoke":
                # one-way parcel: method invocation at the owner of the
                # address in the first register operand
                acc += p.issue_cycles + p.send_overhead_cycles
                cpu.set_state(BUSY)
                yield sim.timeout(acc)
                acc = 0.0
                address = regs[args[0]]
                target = p.owner(address)
                if target == self.node_id:
                    self.spawn_thread(args[1], address, regs[args[2]])
                else:
                    parcel = Parcel(
                        kind=ParcelKind.REQUEST,
                        source=self.node_id,
                        destination=target,
                        target_address=address,
                        action="isa.invoke",
                        operands=(args[1], regs[args[2]]),
                        continuation=None,
                    )
                    self.network.send(parcel)
                pc += 1
                continue

            # memory operations: ld / st / amo / vld / vst
            if op in ("ld", "st", "vld", "vst"):
                address = regs[args[1]] + args[2]
            else:  # amo rd, ra, rb -> address in ra
                address = regs[args[1]]
            is_vector = op in ("vld", "vst")
            owner = p.owner(address)
            if is_vector and p.owner(address + VLEN - 1) != owner:
                raise IsaRuntimeError(
                    f"node {self.node_id}: vector access at {address} "
                    f"spans a node boundary (VLEN={VLEN})"
                )
            if owner == self.node_id:
                cpu.set_state(BUSY)
                if acc > 0:
                    yield sim.timeout(acc)
                acc = 0.0
                cpu.set_state(MEMORY)
                # one row-buffer access regardless of width: the wide
                # word is the bandwidth reclaim of §2.1
                yield sim.timeout(p.memory_cycles)
                offset = p.local_offset(address)
                if op == "ld":
                    regs[args[0]] = int(self.memory[offset])
                elif op == "st":
                    self.memory[offset] = np.int64(regs[args[0]])
                elif op == "vld":
                    for lane in range(VLEN):
                        regs[args[0] + lane] = int(
                            self.memory[offset + lane]
                        )
                elif op == "vst":
                    for lane in range(VLEN):
                        self.memory[offset + lane] = np.int64(
                            regs[args[0] + lane]
                        )
                else:  # amo: fetch-and-add
                    old = int(self.memory[offset])
                    self.memory[offset] = np.int64(
                        _to_signed(old + regs[args[2]])
                    )
                    regs[args[0]] = old
                regs[0] = 0
                self.local_accesses += 1
                pc += 1
                # Fine-grain fairness: if other threads or incident
                # parcels are waiting for this processor, yield it at the
                # memory-access boundary (PIM Lite switches contexts at
                # this granularity).  Without this, a thread spinning on
                # a local flag would starve the parcel handlers that are
                # trying to update that very flag.
                if cpu.resource.queued > 0:
                    cpu.release(req)
                    req = cpu.acquire()
                    yield req
                    acc += p.context_switch_cycles
                continue

            # remote memory operation: split transaction
            self.remote_accesses += 1
            acc += p.send_overhead_cycles + p.context_switch_cycles
            cpu.set_state(BUSY)
            yield sim.timeout(acc)
            acc = 0.0
            if op == "ld":
                action, operands = "isa.load", ()
            elif op == "st":
                action, operands = "isa.store", (regs[args[0]],)
            elif op == "vld":
                action, operands = "isa.vload", ()
            elif op == "vst":
                action = "isa.vstore"
                operands = tuple(
                    regs[args[0] + lane] for lane in range(VLEN)
                )
            else:
                action, operands = "isa.amo", (regs[args[2]],)
            parcel = Parcel.request(
                self.node_id,
                owner,
                target_address=address,
                action=action,
                operands=operands,
            )
            reply_event = sim.event()
            assert parcel.continuation is not None
            self._pending[parcel.continuation.transaction_id] = reply_event
            self.network.send(parcel)
            cpu.release(req)
            reply = yield reply_event
            req = cpu.acquire()
            yield req
            cpu.set_state(BUSY)
            yield sim.timeout(p.receive_overhead_cycles)
            if op in ("ld", "amo"):
                regs[args[0]] = _to_signed(
                    int(_t.cast(Parcel, reply).operands[0])
                )
            elif op == "vld":
                for lane in range(VLEN):
                    regs[args[0] + lane] = _to_signed(
                        int(_t.cast(Parcel, reply).operands[lane])
                    )
            regs[0] = 0
            pc += 1

    # ------------------------------------------------------------------
    # parcel servicing
    # ------------------------------------------------------------------
    def _dispatcher(self):
        sim = self.sim
        while True:
            parcel = yield self.mailbox.get()
            assert isinstance(parcel, Parcel)
            if parcel.kind == ParcelKind.REPLY:
                assert parcel.continuation is not None
                event = self._pending.pop(
                    parcel.continuation.transaction_id, None
                )
                if event is None:
                    raise IsaRuntimeError(
                        f"node {self.node_id}: orphan reply "
                        f"{parcel.continuation.transaction_id}"
                    )
                event.succeed(parcel)  # type: ignore[attr-defined]
            else:
                sim.process(
                    self._service(parcel), name=f"isa.{self.node_id}.svc"
                )

    def _service(self, parcel: Parcel):
        sim = self.sim
        p = self.params
        cpu = self.cpu
        req = cpu.acquire()
        yield req
        cpu.set_state(BUSY)
        yield sim.timeout(p.receive_overhead_cycles)
        self.parcels_serviced += 1

        if parcel.action == "isa.invoke":
            entry = int(parcel.operands[0])
            self.spawn_thread(entry, parcel.target_address,
                              int(parcel.operands[1]))
            cpu.release(req)
            return

        cpu.set_state(MEMORY)
        yield sim.timeout(p.memory_cycles)
        offset = p.local_offset(parcel.target_address)
        if p.owner(parcel.target_address) != self.node_id:
            raise IsaRuntimeError(
                f"node {self.node_id} received parcel for address "
                f"{parcel.target_address} it does not own"
            )
        self.local_accesses += 1
        if parcel.action == "isa.load":
            result: _t.Tuple[int, ...] = (int(self.memory[offset]),)
        elif parcel.action == "isa.store":
            self.memory[offset] = np.int64(
                _to_signed(int(parcel.operands[0]))
            )
            result = ()
        elif parcel.action == "isa.vload":
            result = tuple(
                int(self.memory[offset + lane]) for lane in range(VLEN)
            )
        elif parcel.action == "isa.vstore":
            for lane in range(VLEN):
                self.memory[offset + lane] = np.int64(
                    _to_signed(int(parcel.operands[lane]))
                )
            result = ()
        elif parcel.action == "isa.amo":
            old = int(self.memory[offset])
            self.memory[offset] = np.int64(
                _to_signed(old + int(parcel.operands[0]))
            )
            result = (old,)
        else:
            raise IsaRuntimeError(
                f"node {self.node_id}: unknown parcel action "
                f"{parcel.action!r}"
            )
        cpu.set_state(BUSY)
        yield sim.timeout(p.send_overhead_cycles)
        self.network.send(parcel.reply(operands=result))
        cpu.release(req)

    # ------------------------------------------------------------------
    def state_fractions(self, now: float) -> _t.Dict[str, float]:
        totals = self.cpu.timer.totals(now)
        span = sum(totals.values())
        return {k: v / span for k, v in totals.items()} if span else {}

    def idle_fraction(self, now: float) -> float:
        return self.cpu.timer.fraction(IDLE, now)
