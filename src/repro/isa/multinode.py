"""Multi-node PIM system: global memory, parcels, execution control.

:class:`PimSystem` assembles the functional pieces — ``n`` PIM nodes
(:class:`~repro.isa.machine.PimNode`), the flat-latency parcel network of
the statistical study, and a block-distributed global address space — into
a runnable machine:

>>> from repro.isa import IsaParams, PimSystem, assemble
>>> system = PimSystem(IsaParams(n_nodes=2, words_per_node=64))
>>> prog = assemble('''
...     ld   r3, r1, 0      # load argument word
...     addi r3, r3, 5
...     st   r3, r1, 0
...     halt
... ''')
>>> system.load(prog)
>>> system.write_word(70, 37)            # word 70 lives on node 1
>>> _ = system.spawn(0, "", r1=70)       # node 0 updates it via parcels
>>> result = system.run()
>>> system.read_word(70)
42
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..core.parcels.network import FlatNetwork, Network
from ..desim import Simulator, Tracer
from .assembler import Program
from .machine import IsaParams, IsaRuntimeError, PimNode, ThreadResult

__all__ = ["SystemRunResult", "PimSystem"]


@dataclasses.dataclass(frozen=True)
class SystemRunResult:
    """Aggregate outcome of a :meth:`PimSystem.run` call."""

    cycles: float
    threads_completed: int
    instructions: int
    instruction_mix: _t.Mapping[str, int]
    local_accesses: int
    remote_accesses: int
    parcels_sent: int
    per_node_idle: _t.Tuple[float, ...]

    @property
    def remote_access_fraction(self) -> float:
        """Measured fraction of issued memory accesses that were remote —
        the ``r`` parameter of the §4 statistical study, observed."""
        issued = self.remote_accesses + self.local_accesses
        return self.remote_accesses / issued if issued else 0.0

    @property
    def memory_mix(self) -> float:
        """Measured fraction of instructions that are memory operations —
        Table 1's ``mix_{l/s}``, observed."""
        return (
            self.instruction_mix.get("memory", 0) / self.instructions
            if self.instructions
            else 0.0
        )


class PimSystem:
    """A functional array of PIM nodes with a parcel interconnect.

    Parameters
    ----------
    params:
        Geometry and timing (:class:`IsaParams`).
    tracer:
        Optional :class:`~repro.desim.Tracer` capturing parcel traffic.
    """

    def __init__(
        self,
        params: _t.Optional[IsaParams] = None,
        tracer: _t.Optional[Tracer] = None,
    ) -> None:
        self.params = params or IsaParams()
        self.sim = Simulator(tracer=tracer)
        self.network: Network = FlatNetwork(
            self.sim, self.params.n_nodes, self.params.latency_cycles,
            name="isa.net",
        )
        self.nodes = [
            PimNode(self.sim, i, self.params, self.network)
            for i in range(self.params.n_nodes)
        ]
        self._ran = False

    # ------------------------------------------------------------------
    # program & memory management
    # ------------------------------------------------------------------
    def load(self, program: Program) -> None:
        """Replicate ``program`` on every node and apply its ``.word``
        data directives to global memory."""
        for node in self.nodes:
            node.load(program)
        for address, value in program.data:
            self.write_word(address, value)

    def write_word(self, address: int, value: int) -> None:
        """Host-side store into global memory (no simulated time)."""
        node = self.params.owner(address)
        self.nodes[node].write_local(self.params.local_offset(address), value)

    def read_word(self, address: int) -> int:
        """Host-side load from global memory (no simulated time)."""
        node = self.params.owner(address)
        return self.nodes[node].read_local(self.params.local_offset(address))

    def write_block(self, address: int, values: _t.Sequence[int]) -> None:
        """Host-side bulk store of consecutive words."""
        for offset, value in enumerate(values):
            self.write_word(address + offset, int(value))

    def read_block(self, address: int, count: int) -> _t.List[int]:
        """Host-side bulk load of consecutive words."""
        return [self.read_word(address + i) for i in range(count)]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def spawn(
        self,
        node: int,
        entry: _t.Union[str, int] = "",
        r1: int = 0,
        r2: int = 0,
    ):
        """Start a thread on ``node`` at a label (or instruction index)."""
        if not 0 <= node < self.params.n_nodes:
            raise IsaRuntimeError(f"no such node {node}")
        pim = self.nodes[node]
        if pim.program is None:
            raise IsaRuntimeError("load a program before spawning threads")
        index = (
            pim.program.entry(entry) if isinstance(entry, str) else entry
        )
        return pim.spawn_thread(index, r1, r2)

    def run(self, max_cycles: _t.Optional[float] = None) -> SystemRunResult:
        """Run until the machine quiesces (or ``max_cycles``).

        Quiescence means every spawned thread has halted and no parcels
        remain in flight; dispatcher processes idle on their mailboxes
        and do not keep the simulation alive.
        """
        if max_cycles is None:
            self.sim.run()
        else:
            self.sim.run(until=max_cycles)
        self._ran = True
        counts: _t.Dict[str, int] = {}
        for node in self.nodes:
            for kind, count in node.instruction_counts.items():
                counts[kind] = counts.get(kind, 0) + count
        now = self.sim.now
        return SystemRunResult(
            cycles=now,
            threads_completed=sum(
                len(n.completed_threads) for n in self.nodes
            ),
            instructions=sum(counts.values()),
            instruction_mix=counts,
            local_accesses=sum(n.local_accesses for n in self.nodes),
            remote_accesses=sum(n.remote_accesses for n in self.nodes),
            parcels_sent=self.network.parcels_sent,
            per_node_idle=tuple(
                n.idle_fraction(now) if now > 0 else 0.0
                for n in self.nodes
            ),
        )

    def completed_threads(self) -> _t.List[ThreadResult]:
        """All finished threads across nodes, in completion order."""
        threads = [
            t for node in self.nodes for t in node.completed_threads
        ]
        threads.sort(key=lambda t: t.finished_at)
        return threads

    def __repr__(self) -> str:
        return (
            f"<PimSystem nodes={self.params.n_nodes} "
            f"words/node={self.params.words_per_node}>"
        )
