"""Structured span events for the replay farm's supervisor.

The farm's :class:`~repro.farm.pool.FarmReport` says *what happened*
(counters and per-shard outcomes); this module says *when*: every
supervisor decision — plan, shard dispatch, heartbeats, retries and
their backoff sleeps, checksum verification, degradations, tier
harmonization, the merge — lands in a :class:`FarmEventLog` as a typed
:class:`FarmEvent` stamped on one monotonic wall clock.  Chaos
injections are logged too (``chaos-kill`` / ``chaos-hang`` /
``chaos-corrupt`` / ``chaos-slow``, with the targeted shard and
attempt), so a chaos run's event log is a complete causal record:
``tests/farm/test_events.py`` asserts every injected fault appears as
a typed span with matching shard/attempt context.

:meth:`FarmEventLog.timeline_events` renders the log as Chrome
trace-event metadata + spans — one *process* track with a supervisor
thread and one thread per shard — which
:func:`~repro.telemetry.timeline.build_timeline` appends after the
per-channel simulation tracks, giving a single Perfetto view of a
distributed replay including its failures.  (Farm tracks run on
wall-clock microseconds since the run started; the simulation tracks
run on simulated nanoseconds.  They share a viewer, not a clock —
the track names say which is which.)
"""

from __future__ import annotations

import dataclasses
import time
import typing as _t
from contextlib import contextmanager

__all__ = [
    "FARM_EVENTS_SCHEMA",
    "EVENT_KINDS",
    "FarmEvent",
    "FarmEventLog",
]

#: Schema identifier carried by :meth:`FarmEventLog.to_dict`.
FARM_EVENTS_SCHEMA = "repro.farm/events-v1"

#: The closed vocabulary of event kinds.  ``chaos-*`` kinds are the
#: injected faults of :mod:`repro.farm.chaos` (one per fault kind);
#: everything else is a supervisor action.
EVENT_KINDS = (
    "plan",
    "dispatch",
    "heartbeat",
    "attempt-failed",
    "retry-backoff",
    "verify",
    "shard-done",
    "degrade",
    "harmonize",
    "fallback",
    "merge",
    "chaos-kill",
    "chaos-hang",
    "chaos-corrupt",
    "chaos-slow",
)

#: Supervisor-scope events use this in place of a shard id.
SUPERVISOR = -1


@dataclasses.dataclass(frozen=True)
class FarmEvent:
    """One supervisor span: seconds since the log opened.

    ``shard_id`` is :data:`SUPERVISOR` (-1) for run-scope events;
    ``attempt`` is -1 when the event is not tied to one attempt.
    Instant events have ``end_s == start_s``.
    """

    kind: str
    start_s: float
    end_s: float
    shard_id: int = SUPERVISOR
    attempt: int = -1
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "shard_id": self.shard_id,
            "attempt": self.attempt,
            "detail": self.detail,
        }


class FarmEventLog:
    """Append-only span log on one monotonic clock.

    One log spans one :func:`~repro.farm.pool.replay_farm` call,
    including the harmonization re-run and any fallback — the same
    instance threads through every :class:`~repro.farm.pool.WorkerPool`
    invocation of the run.
    """

    def __init__(self) -> None:
        self._t0 = time.monotonic()
        self.events: _t.List[FarmEvent] = []

    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the log opened (the spans' time base)."""
        return time.monotonic() - self._t0

    def since(self, monotonic_start: float) -> float:
        """Convert an absolute ``time.monotonic()`` stamp to the log's
        relative time base (for spans whose start predates the call)."""
        return monotonic_start - self._t0

    def point(
        self,
        kind: str,
        shard_id: int = SUPERVISOR,
        attempt: int = -1,
        detail: str = "",
    ) -> FarmEvent:
        """Record an instant event at the current time."""
        t = self.now()
        return self.record(kind, t, t, shard_id, attempt, detail)

    def record(
        self,
        kind: str,
        start_s: float,
        end_s: float,
        shard_id: int = SUPERVISOR,
        attempt: int = -1,
        detail: str = "",
    ) -> FarmEvent:
        """Record a span with explicit endpoints (log-relative s)."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown farm event kind {kind!r}; available: "
                f"{EVENT_KINDS}"
            )
        event = FarmEvent(
            kind=kind,
            start_s=start_s,
            end_s=max(start_s, end_s),
            shard_id=shard_id,
            attempt=attempt,
            detail=detail,
        )
        self.events.append(event)
        return event

    @contextmanager
    def span(
        self,
        kind: str,
        shard_id: int = SUPERVISOR,
        attempt: int = -1,
        detail: str = "",
    ) -> _t.Iterator[None]:
        """Record a span covering the ``with`` body."""
        start = self.now()
        try:
            yield
        finally:
            self.record(kind, start, self.now(), shard_id, attempt, detail)

    # ------------------------------------------------------------------
    def counts(self) -> _t.Dict[str, int]:
        """Event count per kind (only kinds that occurred)."""
        out: _t.Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def for_shard(self, shard_id: int) -> _t.List[FarmEvent]:
        """Every event attributed to one shard, in log order."""
        return [e for e in self.events if e.shard_id == shard_id]

    def __len__(self) -> int:
        return len(self.events)

    def to_dict(self) -> dict:
        """The serializable ``repro.farm/events-v1`` document."""
        return {
            "schema": FARM_EVENTS_SCHEMA,
            "n_events": len(self.events),
            "counts": self.counts(),
            "events": [event.to_dict() for event in self.events],
        }

    # ------------------------------------------------------------------
    def timeline_events(self, pid: int) -> _t.List[dict]:
        """Chrome trace-event rendering: metadata + complete events.

        ``pid`` is the process-track id the caller reserves for the
        farm (the timeline builder uses the first id past the channel
        tracks).  Thread 0 is the supervisor; thread ``s + 1`` is
        shard ``s``.  Timestamps are wall-clock microseconds since the
        log opened.
        """
        shard_ids = sorted(
            {e.shard_id for e in self.events if e.shard_id >= 0}
        )
        tid_of = {sid: index + 1 for index, sid in enumerate(shard_ids)}
        out: _t.List[dict] = [
            {
                "ph": "M", "pid": pid, "tid": 0,
                "name": "process_name",
                "args": {"name": "farm (wall clock)"},
            },
            {
                "ph": "M", "pid": pid, "tid": 0,
                "name": "thread_name",
                "args": {"name": "supervisor"},
            },
        ]
        for sid in shard_ids:
            out.append(
                {
                    "ph": "M", "pid": pid, "tid": tid_of[sid],
                    "name": "thread_name",
                    "args": {"name": f"shard {sid}"},
                }
            )
        for event in self.events:
            tid = 0 if event.shard_id < 0 else tid_of[event.shard_id]
            span = {
                "ph": "X",
                "name": event.kind,
                "cat": "farm",
                "pid": pid,
                "tid": tid,
                "ts": event.start_s * 1e6,
                "dur": max(0.0, event.end_s - event.start_s) * 1e6,
                "args": {
                    "shard_id": event.shard_id,
                    "attempt": event.attempt,
                },
            }
            if event.detail:
                span["args"]["detail"] = event.detail
            out.append(span)
        return out

    def __repr__(self) -> str:
        return f"<FarmEventLog n={len(self.events)}>"
