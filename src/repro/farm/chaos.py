"""Deterministic fault injection for the replay farm.

A :class:`FaultPlan` maps ``(shard_id, attempt)`` to a :class:`Fault`,
so a chaos run is fully reproducible: the same seed produces the same
kills, hangs, corruptions, and slowdowns on every machine.  Faults are
applied *inside* the shard worker (:func:`repro.farm.pool._run_shard`),
which is exactly where real failures strike; the supervisor never
knows whether a crash was injected or genuine.

Fault kinds
-----------
``kill``
    The worker dies mid-replay (``os._exit`` in process mode, a raised
    :class:`ChaosKill` in in-process mode).  Surfaces as
    :class:`~repro.errors.WorkerCrash`.
``hang``
    The worker wedges after one heartbeat and goes silent (a long
    sleep in process mode, a raised :class:`ChaosHang` in in-process
    mode).  Surfaces as :class:`~repro.errors.ShardTimeout`.
``corrupt``
    The worker flips result bits *after* sealing the payload checksum,
    modeling torn writes and transport corruption.  Surfaces as
    :class:`~repro.errors.ResultIntegrityError`.
``slow``
    The worker sleeps ``delay_s`` before replaying — exercises retry
    budgets and deadline slack without failing.

Every fault either ends in a bit-exact result (after retries or
degradation) or in a typed :class:`~repro.errors.FarmError` — never in
a silently wrong answer; ``tests/farm/test_chaos.py`` holds that line.
"""

from __future__ import annotations

import dataclasses
import random
import typing as _t

from ..errors import ConfigError

__all__ = [
    "KILL",
    "HANG",
    "CORRUPT",
    "SLOW",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "ChaosKill",
    "ChaosHang",
]

KILL = "kill"
HANG = "hang"
CORRUPT = "corrupt"
SLOW = "slow"

#: Recognised fault kinds, in severity order.
FAULT_KINDS = (KILL, HANG, CORRUPT, SLOW)


class ChaosKill(Exception):
    """In-process stand-in for a worker dying mid-replay."""


class ChaosHang(Exception):
    """In-process stand-in for a worker going silent past its deadline."""


@dataclasses.dataclass(frozen=True)
class Fault:
    """One injected failure.

    ``delay_s`` is only meaningful for ``slow`` faults (how long the
    worker stalls before replaying).
    """

    kind: str
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; available: "
                f"{FAULT_KINDS}"
            )
        if self.delay_s < 0:
            raise ConfigError(
                f"delay_s must be >= 0, got {self.delay_s}"
            )


class FaultPlan:
    """A deterministic ``(shard_id, attempt) -> Fault`` schedule.

    Build one explicitly from a mapping, or use :meth:`always` /
    :meth:`seeded` for the common chaos-test shapes.  Attempts are
    0-based: attempt 0 is the first try, attempt 1 the first retry.
    """

    def __init__(
        self,
        faults: _t.Optional[
            _t.Mapping[_t.Tuple[int, int], Fault]
        ] = None,
    ) -> None:
        self._faults: _t.Dict[_t.Tuple[int, int], Fault] = dict(
            faults or {}
        )

    def fault_for(
        self, shard_id: int, attempt: int
    ) -> _t.Optional[Fault]:
        """The fault scheduled for this attempt, or ``None``."""
        return self._faults.get((shard_id, attempt))

    def __len__(self) -> int:
        return len(self._faults)

    def __repr__(self) -> str:
        kinds = sorted(
            f"{sid}/{att}:{fault.kind}"
            for (sid, att), fault in self._faults.items()
        )
        return f"<FaultPlan {kinds}>"

    # ------------------------------------------------------------------
    @classmethod
    def always(
        cls,
        kind: str,
        shard_ids: _t.Iterable[int],
        attempts: int = 1,
        delay_s: float = 0.0,
    ) -> "FaultPlan":
        """Fault the given shards on their first ``attempts`` tries.

        ``attempts`` past the retry budget means the shard only
        succeeds through degradation (the supervisor's fault-free
        in-process fallback).
        """
        fault = Fault(kind, delay_s=delay_s)
        return cls(
            {
                (int(shard_id), attempt): fault
                for shard_id in shard_ids
                for attempt in range(attempts)
            }
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_shards: int,
        attempts: int = 3,
        rate: float = 0.3,
        kinds: _t.Sequence[str] = FAULT_KINDS,
        slow_delay_s: float = 0.01,
    ) -> "FaultPlan":
        """A reproducible random plan: each (shard, attempt) cell is
        faulted with probability ``rate``, drawing uniformly from
        ``kinds``.  The same seed yields the same plan everywhere.
        """
        if not 0.0 <= rate <= 1.0:
            raise ConfigError(f"rate must be in [0, 1], got {rate}")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ConfigError(
                    f"unknown fault kind {kind!r}; available: "
                    f"{FAULT_KINDS}"
                )
        rng = random.Random(seed)
        faults: _t.Dict[_t.Tuple[int, int], Fault] = {}
        for shard_id in range(n_shards):
            for attempt in range(attempts):
                if rng.random() < rate:
                    kind = kinds[rng.randrange(len(kinds))]
                    faults[(shard_id, attempt)] = Fault(
                        kind,
                        delay_s=(
                            slow_delay_s if kind == SLOW else 0.0
                        ),
                    )
        return cls(faults)


def corrupt_result(result: _t.Dict[str, _t.Any]) -> None:
    """Flip bits in an already-sealed shard result (in place).

    Called by the worker *after* the payload checksum is computed, so
    the supervisor's recompute is guaranteed to mismatch — the exact
    shape of a torn write or a transport-level corruption.
    """
    arrays = result.get("arrays") or {}
    finish = arrays.get("finish")
    if finish is not None and finish.size:
        finish[0] = finish[0] + 1.0
    else:  # zero-length shard: corrupt the scalar instead
        result["makespan_ns"] = float(result["makespan_ns"]) + 1.0
