"""The replay farm: worker pool, supervisor, and exact merge.

:func:`replay_farm` shards a timestamped trace by channel
(:class:`~repro.farm.planner.ShardPlanner`), replays each shard in an
isolated worker, and merges the raw collector states back into a fresh
:class:`~repro.memsys.MemorySystem` whose
:meth:`~repro.memsys.MemorySystem.gather_stats` then computes **bit-
identical** statistics to a single-process replay — the same reduction
code runs on identical collector states, so every float matches to the
last mantissa bit.

Fault tolerance is the supervisor's job: per-attempt deadlines and
heartbeat silence detection (:class:`~repro.errors.ShardTimeout`),
crash isolation (:class:`~repro.errors.WorkerCrash`), payload checksum
verification (:class:`~repro.errors.ResultIntegrityError`), bounded
retries with exponential backoff and deterministic jitter, and two
levels of graceful degradation: a shard past its retry budget is
replayed in-process (fault-free, still exact), and a trace that cannot
be sharded exactly — line-rate, or a worker's no-backpressure
certificate failed — falls back to a full single-process replay.
Every path ends in a bit-exact result or a typed
:class:`~repro.errors.FarmError`; the farm never returns an
approximate answer.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import os
import random
import threading
import time
import typing as _t
from multiprocessing import connection as _mp_connection

import numpy as np

from ..errors import (
    ConfigError,
    FarmError,
    ResultIntegrityError,
    ShardTimeout,
    WorkerCrash,
)
from ..memsys.system import ENGINES, MemSysConfig, MemSysStats, MemorySystem
from ..memsys.trace import PackedTrace
from . import chaos as _chaos
from .events import FarmEventLog
from .planner import Shard, ShardPlan, ShardPlanner, canonical_checksum

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..telemetry import ReplayTelemetry

__all__ = [
    "MODES",
    "FarmConfig",
    "ShardOutcome",
    "FarmReport",
    "FarmResult",
    "WorkerPool",
    "replay_farm",
]

#: Execution modes accepted by :class:`FarmConfig`.
MODES = ("auto", "process", "inprocess")

#: Exit code a chaos-killed worker dies with (distinguishable from 0).
_CHAOS_EXIT = 87

#: Internal engine token: the fast path with tier 2 pinned
#: (``replay_fast(force_exact=True)``).  Workers are re-dispatched with
#: this when the first round's tiers came back mixed — see
#: :func:`replay_farm`.
_EXACT_TIER = "fast-exact"

#: The eight trace-ordered arrays a shard result must carry.
_ARRAY_KEYS = (
    "arrival",
    "start_service",
    "finish",
    "outcome",
    "channel",
    "bank",
    "row",
    "op",
)


# ----------------------------------------------------------------------
# configuration and report types
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class FarmConfig:
    """Supervisor policy: workers, deadlines, retries, backoff.

    Attributes
    ----------
    workers:
        Worker-process cap; ``0`` (default) means
        ``min(n_shards, os.cpu_count())``.
    mode:
        ``"process"`` (real worker processes), ``"inprocess"`` (shards
        replayed sequentially in the supervisor — the degraded path,
        also the deterministic substrate for chaos tests), or
        ``"auto"`` (processes when multiprocessing is usable and more
        than one shard/worker exists).
    engine:
        Replay engine each worker uses (see
        :data:`repro.memsys.ENGINES`).
    max_shards:
        Optional cap on shard count (channels fold round-robin).
    max_retries:
        Failed-attempt budget per shard *beyond* the first try; past
        it the shard degrades to an in-process replay.
    deadline_s:
        Hard wall-clock ceiling per attempt.
    heartbeat_interval_s / heartbeat_timeout_s:
        Workers heartbeat every ``interval``; silence past ``timeout``
        marks the worker hung.  Each heartbeat extends the supervisor's
        patience — long replays survive as long as they stay alive.
    backoff_base_s / backoff_cap_s / jitter / seed:
        Retry ``k`` (0-based) sleeps
        ``min(cap, base * 2**k) * u`` where ``u`` is drawn
        deterministically from ``[1 - jitter, 1 + jitter]`` keyed by
        ``(seed, shard_id, attempt)`` — reproducible, yet decorrelated
        across shards.
    """

    workers: int = 0
    mode: str = "auto"
    engine: str = "auto"
    max_shards: _t.Optional[int] = None
    max_retries: int = 2
    deadline_s: float = 120.0
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 10.0
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigError(
                f"workers must be >= 0 (0 = auto), got {self.workers}"
            )
        if self.mode not in MODES:
            raise ConfigError(
                f"unknown farm mode {self.mode!r}; available: {MODES}"
            )
        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; available: {ENGINES}"
            )
        if self.max_shards is not None and self.max_shards < 1:
            raise ConfigError(
                f"max_shards must be >= 1, got {self.max_shards}"
            )
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        for name in (
            "deadline_s",
            "heartbeat_interval_s",
            "heartbeat_timeout_s",
        ):
            value = getattr(self, name)
            if not value > 0:
                raise ConfigError(f"{name} must be > 0, got {value}")
        if self.backoff_base_s < 0:
            raise ConfigError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_cap_s < self.backoff_base_s:
            raise ConfigError(
                "backoff_cap_s must be >= backoff_base_s, got "
                f"{self.backoff_cap_s} < {self.backoff_base_s}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )


@dataclasses.dataclass
class ShardOutcome:
    """How one shard fared: attempts, errors, final disposition."""

    shard_id: int
    channels: _t.Tuple[int, ...]
    n_requests: int
    attempts: int = 0
    engine: _t.Optional[str] = None
    degraded: bool = False
    errors: _t.List[str] = dataclasses.field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "channels": list(self.channels),
            "n_requests": self.n_requests,
            "attempts": self.attempts,
            "engine": self.engine,
            "degraded": self.degraded,
            "errors": list(self.errors),
        }


@dataclasses.dataclass
class FarmReport:
    """The farm's fault ledger for one replay.

    The counter attributes feed
    :func:`repro.telemetry.farm_metrics` directly; ``errors`` holds
    the string form of every typed error that was absorbed by a retry
    or a degradation (a farm run that *raises* instead never produces
    a report).
    """

    mode: str
    workers: int
    n_shards: int
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    integrity_failures: int = 0
    degraded_shards: int = 0
    harmonized_shards: int = 0
    fell_back_to_single: bool = False
    fallback_reason: str = ""
    shards: _t.List[ShardOutcome] = dataclasses.field(
        default_factory=list
    )
    errors: _t.List[str] = dataclasses.field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "n_shards": self.n_shards,
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "integrity_failures": self.integrity_failures,
            "degraded_shards": self.degraded_shards,
            "harmonized_shards": self.harmonized_shards,
            "fell_back_to_single": self.fell_back_to_single,
            "fallback_reason": self.fallback_reason,
            "shards": [shard.to_dict() for shard in self.shards],
            "errors": list(self.errors),
        }


@dataclasses.dataclass
class FarmResult:
    """What :func:`replay_farm` returns: exact stats + fault ledger."""

    stats: MemSysStats
    report: FarmReport
    telemetry: _t.Optional["ReplayTelemetry"] = None
    #: Supervisor span log (dispatch/heartbeat/retry/verify/merge plus
    #: chaos injections); mergeable into the Chrome timeline.
    events: _t.Optional[FarmEventLog] = None


# ----------------------------------------------------------------------
# the worker side
# ----------------------------------------------------------------------
def _run_shard(
    config: MemSysConfig,
    op_codes: np.ndarray,
    addrs: np.ndarray,
    times: np.ndarray,
    channels: _t.Sequence[int],
    engine: str,
    fault: _t.Optional[_chaos.Fault] = None,
    inprocess: bool = False,
) -> _t.Dict[str, _t.Any]:
    """Replay one shard on a fresh system; return the sealed payload.

    The payload carries the raw collector state of every owned
    channel, the shard's trace-ordered latency arrays, the makespan,
    the no-backpressure certificate (recorded arrivals == trace
    timestamps), and a :func:`~repro.farm.planner.canonical_checksum`
    seal computed over all of the above.  Chaos faults are applied
    here — where real failures strike — so the supervisor cannot tell
    injected failures from genuine ones.
    """
    from ..telemetry import ReplayTelemetry

    if fault is not None:
        if fault.kind == _chaos.KILL:
            if inprocess:
                raise _chaos.ChaosKill("injected worker death")
            os._exit(_CHAOS_EXIT)
        if fault.kind == _chaos.HANG and inprocess:
            # process-mode hangs happen in _worker_main (the worker
            # must go silent, not raise); in-process runs emulate the
            # resulting timeout without waiting it out
            raise _chaos.ChaosHang("injected worker hang")
        if fault.kind == _chaos.SLOW:
            time.sleep(fault.delay_s)
    trace = PackedTrace(op_codes, addrs, times)
    system = MemorySystem(config)
    telemetry = ReplayTelemetry(latency=True, profile=False)
    if engine == _EXACT_TIER:
        from ..memsys.fastpath import replay_fast

        system._replayed = True
        stats = replay_fast(
            system, trace, telemetry, force_exact=True
        )
        telemetry._finish(system, stats)
    else:
        system.replay(trace, engine=engine, telemetry=telemetry)
    recorder = telemetry.recorder
    assert recorder is not None
    arrays = dict(recorder._assemble())
    backpressure = not np.array_equal(arrays["arrival"], times)
    result: _t.Dict[str, _t.Any] = {
        "makespan_ns": float(system.sim.now),
        "engine": system.last_replay_engine,
        "backpressure": bool(backpressure),
        "controllers": {
            int(ch): system.controllers[ch].export_state()
            for ch in channels
        },
        "arrays": arrays,
    }
    result["checksum"] = canonical_checksum(result)
    if fault is not None and fault.kind == _chaos.CORRUPT:
        _chaos.corrupt_result(result)
    return result


def _worker_main(
    conn,
    shard_id: int,
    config: MemSysConfig,
    op_codes: np.ndarray,
    addrs: np.ndarray,
    times: np.ndarray,
    channels: _t.Tuple[int, ...],
    engine: str,
    fault: _t.Optional[_chaos.Fault],
    heartbeat_interval_s: float,
) -> None:
    """Worker-process entry: heartbeat thread + shard replay."""
    try:
        if fault is not None and fault.kind == _chaos.HANG:
            # one heartbeat, then silence: a wedged worker, not a dead
            # one — only the heartbeat timeout can catch it
            conn.send(("heartbeat", shard_id))
            while True:  # pragma: no cover - killed by supervisor
                time.sleep(3600.0)
        stop = threading.Event()

        def _beat() -> None:
            while not stop.wait(heartbeat_interval_s):
                try:
                    conn.send(("heartbeat", shard_id))
                except OSError:  # supervisor went away
                    return

        beater = threading.Thread(
            target=_beat, name="farm.heartbeat", daemon=True
        )
        beater.start()
        try:
            result = _run_shard(
                config,
                op_codes,
                addrs,
                times,
                channels,
                engine,
                fault=fault,
            )
        finally:
            stop.set()
        conn.send(("result", shard_id, result))
    except BaseException as error:  # noqa: BLE001 - ship it upstream
        try:
            conn.send(
                ("error", shard_id, f"{type(error).__name__}: {error}")
            )
        except OSError:  # pragma: no cover - pipe already gone
            pass
        raise SystemExit(1)
    finally:
        conn.close()


# ----------------------------------------------------------------------
# the supervisor side
# ----------------------------------------------------------------------
class _Active:
    """Book-keeping for one in-flight worker attempt."""

    __slots__ = ("shard", "attempt", "proc", "conn", "started", "last_seen")

    def __init__(self, shard: Shard, attempt: int, proc, conn) -> None:
        self.shard = shard
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.started = time.monotonic()
        self.last_seen = self.started


class WorkerPool:
    """Supervise shard replays: launch, watch, retry, degrade.

    :meth:`run` executes every shard of a plan and returns the raw
    result payloads in shard order plus the fault ledger.  Failures
    are absorbed by the retry budget and, past it, by an in-process
    fault-free replay of the shard — :meth:`run` itself only raises on
    misconfiguration, never on worker failure.
    """

    def __init__(
        self,
        farm: _t.Optional[FarmConfig] = None,
        events: _t.Optional[FarmEventLog] = None,
    ) -> None:
        self.farm = farm or FarmConfig()
        #: Span log every supervisor action lands in; callers that want
        #: the run's events pass their own (``replay_farm`` does).
        self.events = events if events is not None else FarmEventLog()

    # ------------------------------------------------------------------
    def resolve_mode(self, n_shards: int) -> _t.Tuple[str, int, str]:
        """Pick (mode, workers, reason-if-degraded) for a plan."""
        farm = self.farm
        workers = farm.workers or min(n_shards, os.cpu_count() or 1)
        workers = max(1, min(workers, n_shards))
        if farm.mode == "inprocess":
            return "inprocess", workers, ""
        usable, why = _multiprocessing_usable()
        if farm.mode == "process":
            if not usable:
                return "inprocess", workers, why
            return "process", workers, ""
        # auto: processes only when they can actually help
        if n_shards <= 1 or workers <= 1:
            return "inprocess", workers, ""
        if not usable:
            return "inprocess", workers, why
        return "process", workers, ""

    # ------------------------------------------------------------------
    def run(
        self,
        plan: ShardPlan,
        fault_plan: _t.Optional[_chaos.FaultPlan] = None,
        engine: _t.Optional[str] = None,
        shard_ids: _t.Optional[_t.Sequence[int]] = None,
        report: _t.Optional[FarmReport] = None,
    ) -> _t.Tuple[_t.Dict[int, _t.Dict[str, _t.Any]], FarmReport]:
        """Replay the plan's shards; return ({shard_id: result}, report).

        ``engine`` overrides the configured worker engine (the
        tier-harmonization pass pins ``"fast-exact"``); ``shard_ids``
        restricts the run to a subset; ``report`` accumulates into an
        existing ledger instead of opening a fresh one.
        """
        mode, workers, why = self.resolve_mode(plan.n_shards)
        if report is None:
            report = FarmReport(
                mode=mode, workers=workers, n_shards=plan.n_shards
            )
            if why:
                report.errors.append(f"degraded to in-process: {why}")
            report.shards = [
                ShardOutcome(
                    shard_id=shard.shard_id,
                    channels=shard.channels,
                    n_requests=len(shard),
                )
                for shard in plan.shards
            ]
        engine = engine if engine is not None else self.farm.engine
        shards = [
            shard
            for shard in plan.shards
            if shard_ids is None or shard.shard_id in set(shard_ids)
        ]
        if mode == "process":
            results = self._run_processes(
                plan, shards, engine, fault_plan, report
            )
        else:
            results = self._run_inprocess(
                plan, shards, engine, fault_plan, report
            )
        return results, report

    # ------------------------------------------------------------------
    # shared failure accounting
    # ------------------------------------------------------------------
    def _backoff_delay(self, shard_id: int, attempt: int) -> float:
        farm = self.farm
        base = min(
            farm.backoff_cap_s, farm.backoff_base_s * (2.0**attempt)
        )
        rng = random.Random(f"{farm.seed}:{shard_id}:{attempt}")
        lo = 1.0 - farm.jitter
        span = 2.0 * farm.jitter
        return base * (lo + span * rng.random())

    def _note_failure(
        self,
        report: FarmReport,
        shard: Shard,
        attempt: int,
        error: FarmError,
    ) -> _t.Tuple[str, float]:
        """Record one failed attempt; decide ``retry`` or ``degrade``."""
        outcome = report.shards[shard.shard_id]
        outcome.errors.append(f"{type(error).__name__}: {error}")
        report.errors.append(f"{type(error).__name__}: {error}")
        if isinstance(error, ShardTimeout):
            report.timeouts += 1
        elif isinstance(error, ResultIntegrityError):
            report.integrity_failures += 1
        else:
            report.crashes += 1
        if attempt < self.farm.max_retries:
            report.retries += 1
            return "retry", self._backoff_delay(shard.shard_id, attempt)
        return "degrade", 0.0

    def _verify_result(
        self, shard: Shard, attempt: int, result: _t.Any
    ) -> None:
        """Checksum + shape checks; raises ResultIntegrityError."""
        if not isinstance(result, dict) or "checksum" not in result:
            raise ResultIntegrityError(
                f"shard {shard.shard_id}: malformed result payload",
                shard_id=shard.shard_id,
                attempt=attempt,
            )
        claimed = result["checksum"]
        payload = {
            key: value
            for key, value in result.items()
            if key != "checksum"
        }
        actual = canonical_checksum(payload)
        if claimed != actual:
            raise ResultIntegrityError(
                f"shard {shard.shard_id}: result checksum mismatch "
                f"(claimed {claimed[:12]}…, recomputed {actual[:12]}…)",
                shard_id=shard.shard_id,
                attempt=attempt,
            )
        arrays = result["arrays"]
        n = len(shard)
        if set(arrays) != set(_ARRAY_KEYS) or any(
            arrays[key].shape != (n,) for key in _ARRAY_KEYS
        ):
            raise ResultIntegrityError(
                f"shard {shard.shard_id}: result arrays do not match "
                f"the shard's {n} request(s)",
                shard_id=shard.shard_id,
                attempt=attempt,
            )

    def _degrade(
        self,
        plan: ShardPlan,
        shard: Shard,
        engine: str,
        report: FarmReport,
    ) -> _t.Dict[str, _t.Any]:
        """Past the retry budget: replay the shard here, fault-free."""
        with self.events.span(
            "degrade", shard_id=shard.shard_id,
            detail="retry budget exhausted: fault-free in-process replay",
        ):
            result = _run_shard(
                plan.config,
                shard.trace.op_codes,
                shard.trace.addrs,
                shard.trace.times,
                shard.channels,
                engine,
                fault=None,
                inprocess=True,
            )
        report.degraded_shards += 1
        report.attempts += 1
        outcome = report.shards[shard.shard_id]
        outcome.attempts += 1
        outcome.degraded = True
        outcome.engine = result["engine"]
        return result

    # ------------------------------------------------------------------
    # in-process execution (degraded mode; chaos substrate)
    # ------------------------------------------------------------------
    def _run_inprocess(
        self,
        plan: ShardPlan,
        shards: _t.Sequence[Shard],
        engine: str,
        fault_plan: _t.Optional[_chaos.FaultPlan],
        report: FarmReport,
    ) -> _t.Dict[int, _t.Dict[str, _t.Any]]:
        results: _t.Dict[int, _t.Dict[str, _t.Any]] = {}
        for shard in shards:
            attempt = 0
            while True:
                report.attempts += 1
                report.shards[shard.shard_id].attempts += 1
                fault = (
                    fault_plan.fault_for(shard.shard_id, attempt)
                    if fault_plan is not None
                    else None
                )
                if fault is not None:
                    self.events.point(
                        f"chaos-{fault.kind}",
                        shard_id=shard.shard_id,
                        attempt=attempt,
                        detail="injected fault",
                    )
                dispatch_start = self.events.now()
                error: FarmError
                try:
                    try:
                        result = _run_shard(
                            plan.config,
                            shard.trace.op_codes,
                            shard.trace.addrs,
                            shard.trace.times,
                            shard.channels,
                            engine,
                            fault=fault,
                            inprocess=True,
                        )
                    finally:
                        self.events.record(
                            "dispatch",
                            dispatch_start,
                            self.events.now(),
                            shard_id=shard.shard_id,
                            attempt=attempt,
                        )
                    with self.events.span(
                        "verify", shard_id=shard.shard_id, attempt=attempt
                    ):
                        self._verify_result(shard, attempt, result)
                except _chaos.ChaosKill:
                    error = WorkerCrash(
                        f"shard {shard.shard_id} worker died "
                        f"(attempt {attempt})",
                        shard_id=shard.shard_id,
                        attempt=attempt,
                    )
                except _chaos.ChaosHang:
                    error = ShardTimeout(
                        f"shard {shard.shard_id} went silent past "
                        f"{self.farm.heartbeat_timeout_s}s "
                        f"(attempt {attempt})",
                        shard_id=shard.shard_id,
                        attempt=attempt,
                    )
                except ResultIntegrityError as integrity:
                    error = integrity
                except Exception as other:  # genuine replay failure
                    error = WorkerCrash(
                        f"shard {shard.shard_id} worker raised "
                        f"{type(other).__name__}: {other}",
                        shard_id=shard.shard_id,
                        attempt=attempt,
                    )
                else:
                    outcome = report.shards[shard.shard_id]
                    outcome.engine = result["engine"]
                    results[shard.shard_id] = result
                    self.events.point(
                        "shard-done",
                        shard_id=shard.shard_id,
                        attempt=attempt,
                        detail=str(result["engine"]),
                    )
                    break
                action, delay = self._note_failure(
                    report, shard, attempt, error
                )
                self.events.point(
                    "attempt-failed",
                    shard_id=shard.shard_id,
                    attempt=attempt,
                    detail=type(error).__name__,
                )
                if action == "retry":
                    if delay > 0:
                        with self.events.span(
                            "retry-backoff",
                            shard_id=shard.shard_id,
                            attempt=attempt,
                        ):
                            time.sleep(delay)
                    attempt += 1
                    continue
                results[shard.shard_id] = self._degrade(
                    plan, shard, engine, report
                )
                break
        return results

    # ------------------------------------------------------------------
    # process execution
    # ------------------------------------------------------------------
    def _run_processes(
        self,
        plan: ShardPlan,
        shards: _t.Sequence[Shard],
        engine: str,
        fault_plan: _t.Optional[_chaos.FaultPlan],
        report: FarmReport,
    ) -> _t.Dict[int, _t.Dict[str, _t.Any]]:
        farm = self.farm
        ctx = _mp_context()
        results: _t.Dict[int, _t.Dict[str, _t.Any]] = {}
        degraded: _t.List[Shard] = []
        # (ready_at, shard, attempt) — retries wait out their backoff
        # here without blocking supervision of the other shards
        queue: _t.List[_t.Tuple[float, Shard, int]] = [
            (0.0, shard, 0) for shard in shards
        ]
        active: _t.Dict[int, _Active] = {}
        outstanding = len(shards)
        poll_s = max(
            0.005, min(0.1, farm.heartbeat_interval_s / 2.0)
        )

        def _launch(shard: Shard, attempt: int) -> None:
            fault = (
                fault_plan.fault_for(shard.shard_id, attempt)
                if fault_plan is not None
                else None
            )
            if fault is not None:
                self.events.point(
                    f"chaos-{fault.kind}",
                    shard_id=shard.shard_id,
                    attempt=attempt,
                    detail="injected fault",
                )
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    shard.shard_id,
                    plan.config,
                    shard.trace.op_codes,
                    shard.trace.addrs,
                    shard.trace.times,
                    shard.channels,
                    engine,
                    fault,
                    farm.heartbeat_interval_s,
                ),
                name=f"farm-shard{shard.shard_id}-a{attempt}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            report.attempts += 1
            report.shards[shard.shard_id].attempts += 1
            active[shard.shard_id] = _Active(
                shard, attempt, proc, parent_conn
            )

        def _reap(state: _Active) -> None:
            state.conn.close()
            if state.proc.is_alive():
                state.proc.kill()
            state.proc.join(timeout=5.0)
            active.pop(state.shard.shard_id, None)

        def _fail(state: _Active, error: FarmError) -> None:
            nonlocal outstanding
            _reap(state)
            self.events.record(
                "dispatch",
                self.events.since(state.started),
                self.events.now(),
                shard_id=state.shard.shard_id,
                attempt=state.attempt,
            )
            self.events.point(
                "attempt-failed",
                shard_id=state.shard.shard_id,
                attempt=state.attempt,
                detail=type(error).__name__,
            )
            action, delay = self._note_failure(
                report, state.shard, state.attempt, error
            )
            if action == "retry":
                now_s = self.events.now()
                self.events.record(
                    "retry-backoff",
                    now_s,
                    now_s + delay,
                    shard_id=state.shard.shard_id,
                    attempt=state.attempt,
                )
                queue.append(
                    (
                        time.monotonic() + delay,
                        state.shard,
                        state.attempt + 1,
                    )
                )
            else:
                degraded.append(state.shard)
                outstanding -= 1

        try:
            while outstanding > len(degraded) or active:
                now = time.monotonic()
                if queue and len(active) < farm.workers:
                    queue.sort(key=lambda item: item[0])
                    while queue and len(active) < farm.workers:
                        if queue[0][0] > now:
                            break
                        _, shard, attempt = queue.pop(0)
                        _launch(shard, attempt)
                conns = {
                    state.conn: state for state in active.values()
                }
                if not conns:
                    time.sleep(poll_s)
                    continue
                for conn in _mp_connection.wait(
                    list(conns), timeout=poll_s
                ):
                    state = conns[conn]
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        _fail(
                            state,
                            WorkerCrash(
                                f"shard {state.shard.shard_id} worker "
                                f"died (exitcode "
                                f"{state.proc.exitcode}, attempt "
                                f"{state.attempt})",
                                shard_id=state.shard.shard_id,
                                attempt=state.attempt,
                            ),
                        )
                        continue
                    state.last_seen = time.monotonic()
                    kind = message[0]
                    if kind == "heartbeat":
                        self.events.point(
                            "heartbeat",
                            shard_id=state.shard.shard_id,
                            attempt=state.attempt,
                        )
                        continue
                    if kind == "error":
                        _fail(
                            state,
                            WorkerCrash(
                                f"shard {state.shard.shard_id} worker "
                                f"raised {message[2]} (attempt "
                                f"{state.attempt})",
                                shard_id=state.shard.shard_id,
                                attempt=state.attempt,
                            ),
                        )
                        continue
                    # a result: verify the seal before accepting
                    result = message[2]
                    try:
                        with self.events.span(
                            "verify",
                            shard_id=state.shard.shard_id,
                            attempt=state.attempt,
                        ):
                            self._verify_result(
                                state.shard, state.attempt, result
                            )
                    except ResultIntegrityError as integrity:
                        _fail(state, integrity)
                        continue
                    self.events.record(
                        "dispatch",
                        self.events.since(state.started),
                        self.events.now(),
                        shard_id=state.shard.shard_id,
                        attempt=state.attempt,
                    )
                    self.events.point(
                        "shard-done",
                        shard_id=state.shard.shard_id,
                        attempt=state.attempt,
                        detail=str(result["engine"]),
                    )
                    _reap(state)
                    results[state.shard.shard_id] = result
                    report.shards[
                        state.shard.shard_id
                    ].engine = result["engine"]
                    outstanding -= 1
                # deadline + heartbeat-silence sweep
                now = time.monotonic()
                for state in list(active.values()):
                    silent = now - state.last_seen
                    alive_for = now - state.started
                    if silent > farm.heartbeat_timeout_s:
                        _fail(
                            state,
                            ShardTimeout(
                                f"shard {state.shard.shard_id} went "
                                f"silent for {silent:.1f}s (attempt "
                                f"{state.attempt})",
                                shard_id=state.shard.shard_id,
                                attempt=state.attempt,
                            ),
                        )
                    elif alive_for > farm.deadline_s:
                        _fail(
                            state,
                            ShardTimeout(
                                f"shard {state.shard.shard_id} "
                                f"exceeded its {farm.deadline_s}s "
                                f"deadline (attempt {state.attempt})",
                                shard_id=state.shard.shard_id,
                                attempt=state.attempt,
                            ),
                        )
        finally:
            for state in list(active.values()):
                _reap(state)
        for shard in degraded:
            results[shard.shard_id] = self._degrade(
                plan, shard, engine, report
            )
        return results


def _multiprocessing_usable() -> _t.Tuple[bool, str]:
    """Can this interpreter fork/spawn worker processes at all?"""
    try:
        methods = multiprocessing.get_all_start_methods()
    except Exception as error:  # pragma: no cover - exotic platforms
        return False, f"multiprocessing unavailable: {error}"
    if not methods:  # pragma: no cover - exotic platforms
        return False, "no multiprocessing start methods available"
    return True, ""


def _mp_context():
    """Fork when the platform has it (cheap, no pickling of the
    config), spawn otherwise — the payload is fully picklable."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


# ----------------------------------------------------------------------
# merge and the public entry point
# ----------------------------------------------------------------------
def _merge(
    plan: ShardPlan,
    results: _t.Mapping[int, _t.Dict[str, _t.Any]],
) -> _t.Tuple[MemorySystem, MemSysStats, _t.Dict[str, np.ndarray]]:
    """Reassemble shard payloads into one exact system + stat set.

    Loads every owned channel's collector state into a fresh system,
    gives never-owned channels the engine's startup idle transition
    (mirroring the fast path's idle-controller idiom), sets the merged
    clock to the global makespan, and runs the ordinary
    :meth:`~repro.memsys.MemorySystem.gather_stats` reduction — the
    same left-fold over channels in channel order that a single
    process runs, on bit-identical collector states, hence
    bit-identical output.
    """
    config = plan.config
    system = MemorySystem(config)
    owned: _t.Set[int] = set()
    makespan = 0.0
    for shard in plan.shards:
        result = results[shard.shard_id]
        makespan = max(makespan, float(result["makespan_ns"]))
        for channel in shard.channels:
            system.controllers[channel].load_state(
                result["controllers"][channel]
            )
            owned.add(channel)
    for channel in range(config.n_channels):
        if channel not in owned:
            system.controllers[channel].utilization.transition(
                "idle", 0.0
            )
    system.sim._now = makespan
    system._replayed = True
    system.last_replay_engine = "farm"
    stats = system.gather_stats()
    n = len(plan.trace)
    arrays: _t.Dict[str, np.ndarray] = {}
    for key in _ARRAY_KEYS:
        dtype = (
            np.float64
            if key in ("arrival", "start_service", "finish")
            else np.int64
        )
        merged = np.empty(n, dtype=dtype)
        for shard in plan.shards:
            merged[shard.index] = results[shard.shard_id]["arrays"][
                key
            ]
        arrays[key] = merged
    return system, stats, arrays


def replay_farm(
    trace: PackedTrace,
    config: _t.Optional[MemSysConfig] = None,
    farm: _t.Optional[FarmConfig] = None,
    telemetry: _t.Optional["ReplayTelemetry"] = None,
    fault_plan: _t.Optional[_chaos.FaultPlan] = None,
) -> FarmResult:
    """Replay a packed trace on the fault-tolerant sharded farm.

    Plans a channel split, replays each shard under the
    :class:`WorkerPool` supervisor, verifies every worker's
    no-backpressure certificate, and merges the collector states into
    statistics **bit-identical** to
    ``MemorySystem(config).replay(trace)``.  Traces that cannot be
    sharded exactly — line-rate traces, or any shard whose certificate
    failed — are replayed single-process instead (still exact), with
    the degradation recorded in the report.

    Parameters
    ----------
    trace:
        The :class:`~repro.memsys.trace.PackedTrace` to replay.
    config:
        Memory-system configuration (defaults to ``MemSysConfig()``).
    farm:
        Supervisor policy (defaults to :class:`FarmConfig`).
    telemetry:
        Optional :class:`~repro.telemetry.ReplayTelemetry`; its
        latency recorder receives the merged trace-ordered arrays
        (bit-identical to a single-process recording).
    fault_plan:
        Optional :class:`~repro.farm.chaos.FaultPlan` for
        deterministic fault injection (chaos tests only).

    Returns
    -------
    FarmResult
        ``stats`` (exact), ``report`` (the fault ledger), and the
        ``telemetry`` object passed in (if any).
    """
    config = config or MemSysConfig()
    farm = farm or FarmConfig()
    events = FarmEventLog()
    pool = WorkerPool(farm, events=events)
    profiler = telemetry.profiler if telemetry is not None else None
    planner = ShardPlanner(config, max_shards=farm.max_shards)
    if profiler is not None:
        with profiler.phase("farm-plan"):
            with events.span("plan"):
                plan = planner.plan(trace)
    else:
        with events.span("plan"):
            plan = planner.plan(trace)
    if not plan.shardable:
        return _single_process_fallback(
            trace,
            config,
            farm,
            telemetry,
            FarmReport(mode="single", workers=1, n_shards=0),
            plan.reason,
            events,
        )
    if profiler is not None:
        with profiler.phase("farm-execute"):
            results, report = pool.run(plan, fault_plan)
    else:
        results, report = pool.run(plan, fault_plan)
    # Tier harmonization: a single-process fast replay picks ONE tier
    # for the whole trace (tier 1 only when every channel's
    # certificates pass), while each worker judged only its own
    # channels.  Mixed tiers mean the full replay would have run tier
    # 2 everywhere, so re-run the tier-1 shards with the exact tier
    # pinned; homogeneous tiers already match the global choice, and
    # the two tiers differ only by ulp-level Tally rounding — which is
    # exactly what bit-identity forbids.
    tiers = {
        results[shard.shard_id]["engine"] for shard in plan.shards
    }
    if "fast-vectorized" in tiers and len(tiers) > 1:
        redo = [
            shard.shard_id
            for shard in plan.shards
            if results[shard.shard_id]["engine"] == "fast-vectorized"
        ]
        report.harmonized_shards = len(redo)
        events.point(
            "harmonize",
            detail=f"mixed tiers: re-running {len(redo)} shard(s) "
            "with the exact tier pinned",
        )
        if profiler is not None:
            with profiler.phase("farm-harmonize"):
                redone, _ = pool.run(
                    plan,
                    engine=_EXACT_TIER,
                    shard_ids=redo,
                    report=report,
                )
        else:
            redone, _ = pool.run(
                plan, engine=_EXACT_TIER, shard_ids=redo, report=report
            )
        results.update(redone)
    pressured = [
        shard.shard_id
        for shard in plan.shards
        if results[shard.shard_id]["backpressure"]
    ]
    if pressured:
        return _single_process_fallback(
            trace,
            config,
            farm,
            telemetry,
            report,
            "no-backpressure certificate failed for shard(s) "
            f"{pressured}: the trace's arrival intensity exceeds its "
            "queues, so a channel split is not bit-exact",
            events,
        )
    if profiler is not None:
        with profiler.phase("farm-merge"):
            with events.span("merge", detail=f"{plan.n_shards} shard(s)"):
                system, stats, arrays = _merge(plan, results)
    else:
        with events.span("merge", detail=f"{plan.n_shards} shard(s)"):
            system, stats, arrays = _merge(plan, results)
    if telemetry is not None:
        if telemetry.recorder is not None:
            telemetry.recorder._capture_arrays(arrays)
        telemetry._finish(system, stats)
        telemetry.farm_events = events
    return FarmResult(
        stats=stats, report=report, telemetry=telemetry, events=events
    )


def _single_process_fallback(
    trace: PackedTrace,
    config: MemSysConfig,
    farm: FarmConfig,
    telemetry: _t.Optional["ReplayTelemetry"],
    report: FarmReport,
    reason: str,
    events: _t.Optional[FarmEventLog] = None,
) -> FarmResult:
    """Graceful degradation: one exact single-process replay."""
    report.fell_back_to_single = True
    report.fallback_reason = reason
    if events is None:
        events = FarmEventLog()
    system = MemorySystem(config)
    engine = farm.engine
    with events.span("fallback", detail=reason):
        stats = system.replay(trace, engine=engine, telemetry=telemetry)
    if math.isnan(stats.makespan_ns):  # pragma: no cover - defensive
        raise FarmError("single-process fallback produced no makespan")
    if telemetry is not None:
        telemetry.farm_events = events
    return FarmResult(
        stats=stats, report=report, telemetry=telemetry, events=events
    )
