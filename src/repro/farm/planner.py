"""Channel sharding for the fault-tolerant replay farm.

:class:`ShardPlanner` splits a :class:`~repro.memsys.trace.PackedTrace`
into per-channel shards that independent workers can replay on fresh
:class:`~repro.memsys.MemorySystem` instances.  The split is only
*bit-exact* when no shard ever experiences queue backpressure: the
single-process injector (:meth:`MemorySystem._injector
<repro.memsys.MemorySystem.replay>`) is head-of-line blocking, so one
full channel queue delays injection into *every* channel.  A uniformly
timestamped trace whose every request is admitted exactly at its
timestamp decouples the channels — each controller then sees exactly
the same arrival sequence under sharded replay as under global replay,
and the per-channel collector states (and hence every reduced
statistic) are identical bit for bit.

The planner therefore marks a plan shardable only for timestamped
traces; the worker verifies the no-backpressure certificate post hoc
(recorded arrivals must equal the trace timestamps) and the supervisor
degrades to an exact single-process replay whenever the certificate
fails.  Sharded or degraded, the farm never returns an approximate
answer.
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
import typing as _t

import numpy as np

from ..errors import ConfigError
from ..memsys.system import MemSysConfig
from ..memsys.trace import PackedTrace

__all__ = [
    "Shard",
    "ShardPlan",
    "ShardPlanner",
    "canonical_checksum",
]


# ----------------------------------------------------------------------
# canonical checksums (the per-shard result integrity contract)
# ----------------------------------------------------------------------
def _feed(digest: "hashlib._Hash", value: _t.Any) -> None:
    """Feed one value into ``digest`` with an unambiguous type tag.

    Floats hash their IEEE-754 bit pattern (``struct.pack('>d')``) and
    arrays hash dtype + shape + raw bytes, so the checksum is exactly
    as strict as the farm's bit-identity guarantee — a single flipped
    mantissa bit changes it.  Mappings recurse in sorted-key order;
    the encoding is independent of pickle protocol and dict insertion
    order.
    """
    if isinstance(value, np.ndarray):
        digest.update(b"A")
        digest.update(str(value.dtype).encode())
        digest.update(str(value.shape).encode())
        digest.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, bool):
        digest.update(b"B" + (b"1" if value else b"0"))
    elif isinstance(value, int):
        digest.update(b"I" + str(value).encode())
    elif isinstance(value, float):
        digest.update(b"F" + struct.pack(">d", value))
    elif isinstance(value, str):
        encoded = value.encode()
        digest.update(b"S" + str(len(encoded)).encode() + b":" + encoded)
    elif value is None:
        digest.update(b"N")
    elif isinstance(value, _t.Mapping):
        digest.update(b"M" + str(len(value)).encode())
        for key in sorted(value, key=repr):
            _feed(digest, key)
            _feed(digest, value[key])
    elif isinstance(value, (list, tuple)):
        digest.update(b"L" + str(len(value)).encode())
        for item in value:
            _feed(digest, item)
    else:
        raise TypeError(
            f"canonical_checksum cannot encode {type(value).__name__!r}"
        )


def canonical_checksum(value: _t.Any) -> str:
    """SHA-256 over a canonical encoding of ``value``.

    Used by shard workers to seal their result payload (collector
    states, latency arrays, makespan) before it crosses the process
    boundary; the supervisor recomputes it on receipt and raises
    :class:`~repro.errors.ResultIntegrityError` on mismatch.
    """
    digest = hashlib.sha256()
    _feed(digest, value)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# shards and plans
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Shard:
    """One worker's slice of the trace: a channel group's requests.

    Attributes
    ----------
    shard_id:
        Dense shard index (``0 .. n_shards-1``).
    channels:
        The channels this shard owns (every request in ``trace``
        decodes to one of them).
    trace:
        The shard's sub-trace — the owned channels' requests in
        original trace order (timestamps stay non-decreasing because a
        subsequence of a sorted sequence is sorted).
    index:
        Positions of the shard's requests in the original trace;
        scatter target for reassembling trace-ordered latency arrays.
    """

    shard_id: int
    channels: _t.Tuple[int, ...]
    trace: PackedTrace
    index: np.ndarray

    def __len__(self) -> int:
        return len(self.trace)


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """The planner's verdict plus the shards themselves.

    ``shardable`` is the *static* half of the exactness argument (the
    trace is uniformly timestamped, so per-shard replay can in
    principle admit every request at its timestamp); the dynamic half
    — no shard actually hit backpressure — is certified by the workers
    during replay.  A plan that is not shardable carries the human-
    readable ``reason`` and an empty shard list; the supervisor then
    degrades to exact single-process replay.
    """

    config: MemSysConfig
    trace: PackedTrace
    shards: _t.Tuple[Shard, ...]
    shardable: bool
    reason: str = ""

    @property
    def n_shards(self) -> int:
        return len(self.shards)


class ShardPlanner:
    """Split a packed trace by decoded channel into worker shards.

    Parameters
    ----------
    config:
        The memory-system configuration; its address map decides which
        channel each request lands on.
    max_shards:
        Optional cap on shard count.  With more active channels than
        ``max_shards``, channels are folded round-robin into groups —
        a shard replays its whole group on one fresh system, which is
        still exact (channels never interact once injection is
        timestamp-driven).
    """

    def __init__(
        self,
        config: MemSysConfig,
        max_shards: _t.Optional[int] = None,
    ) -> None:
        if max_shards is not None and max_shards < 1:
            raise ConfigError(
                f"max_shards must be >= 1, got {max_shards}"
            )
        self.config = config
        self.max_shards = max_shards

    def plan(self, trace: PackedTrace) -> ShardPlan:
        """Build the shard plan (or a degradation verdict) for a trace."""
        if len(trace) == 0:
            return ShardPlan(
                self.config, trace, (), False, "empty trace"
            )
        if trace.times is None:
            return ShardPlan(
                self.config,
                trace,
                (),
                False,
                "line-rate trace: the single-process injector couples "
                "channels through head-of-line backpressure, so a "
                "channel split is not bit-exact",
            )
        channel = self.config.address_map().decode_fields(trace.addrs)[
            "channel"
        ]
        active = [int(c) for c in np.unique(channel)]
        n_shards = len(active)
        if self.max_shards is not None:
            n_shards = min(n_shards, self.max_shards)
        groups: _t.List[_t.List[int]] = [[] for _ in range(n_shards)]
        for position, chan in enumerate(active):
            groups[position % n_shards].append(chan)
        shards = []
        for shard_id, group in enumerate(groups):
            mask = np.isin(channel, group)
            index = np.flatnonzero(mask)
            sub = PackedTrace(
                trace.op_codes[index],
                trace.addrs[index],
                trace.times[index],
            )
            shards.append(
                Shard(
                    shard_id=shard_id,
                    channels=tuple(group),
                    trace=sub,
                    index=index,
                )
            )
        return ShardPlan(self.config, trace, tuple(shards), True)
