"""Fault-tolerant sharded replay farm.

Shard a timestamped :class:`~repro.memsys.trace.PackedTrace` by
channel, replay the shards in supervised worker processes, and merge
the results into statistics **bit-identical** to a single-process
:meth:`MemorySystem.replay <repro.memsys.MemorySystem.replay>` — with
retries, deadlines, heartbeats, result-integrity checksums, and
graceful degradation when sharding cannot be exact.  See
``docs/robustness.md`` for the architecture and the failure-semantics
table, and :mod:`repro.farm.chaos` for deterministic fault injection.

>>> from repro.farm import FarmConfig, replay_farm
>>> result = replay_farm(trace, config, FarmConfig(workers=4))
>>> result.stats            # bit-identical to single-process replay
>>> result.report.retries   # the fault ledger
"""

from .chaos import (
    CORRUPT,
    FAULT_KINDS,
    HANG,
    KILL,
    SLOW,
    Fault,
    FaultPlan,
)
from .events import (
    EVENT_KINDS,
    FARM_EVENTS_SCHEMA,
    FarmEvent,
    FarmEventLog,
)
from .planner import Shard, ShardPlan, ShardPlanner, canonical_checksum
from .pool import (
    MODES,
    FarmConfig,
    FarmReport,
    FarmResult,
    ShardOutcome,
    WorkerPool,
    replay_farm,
)

__all__ = [
    "CORRUPT",
    "EVENT_KINDS",
    "FARM_EVENTS_SCHEMA",
    "FAULT_KINDS",
    "HANG",
    "KILL",
    "MODES",
    "SLOW",
    "Fault",
    "FaultPlan",
    "FarmConfig",
    "FarmEvent",
    "FarmEventLog",
    "FarmReport",
    "FarmResult",
    "Shard",
    "ShardOutcome",
    "ShardPlan",
    "ShardPlanner",
    "WorkerPool",
    "canonical_checksum",
    "replay_farm",
]
