"""Built-in PIM kernels: data layout, microkernel, and references.

Each builder returns a :class:`PimKernel` — the PIM analogue of
:class:`repro.isa.programs.KernelBinary`: closures that stage input
data into the banks, execute the kernel on a
:class:`~repro.pimexec.machine.PimExecMachine`, verify the machine's
register/bank state **bit-exactly** against a NumPy reference that
performs the same float64 operations in the same order, and produce
the equivalent *host-only* request stream (every operand moved one
page at a time over the host interface) for the host-vs-PIM timing
comparison of ``exp_pimexec``.

Data layout
-----------
Vectors are paged: ``lanes`` values per page, page ``p`` assigned
round-robin to execution unit ``p % units`` at *slot* ``p // units``,
and slot ``s`` lives at ``(row, col) = (s // pages_per_row,
s % pages_per_row)``.  All banks of a channel therefore hold their
slot-``s`` page at the same address — exactly what all-bank lockstep
execution requires.

Kernels
-------
``vector-sum``
    ``sum(x)``: each bank streams its pages into a GRF accumulator
    (``ADD GRF_B0, BANK, GRF_B0`` under a ``JUMP`` loop), the host
    reads back and reduces the per-bank partials.
``axpy``
    ``y = a*x + y``: ``FILL`` x and y pages into GRFs, ``MAC`` with the
    broadcast scalar ``a`` in SRF0, ``MOV`` the result back to the
    bank — the read-modify-write streaming kernel.
``gemv``
    ``y = A @ x``: matrix rows striped across banks (one output row
    per lane), the host broadcasts ``x[j]`` into SRF0 and triggers one
    all-bank ``MAC`` per column — the HBM-PIM GEMV recipe, a *mixed*
    host+PIM command stream.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ..memsys import MemRequest, MemSysConfig, MemorySystem, MemSysStats, Op
from .commands import Operand, PimCommand, PimOpcode
from .machine import PimExecMachine, PimExecResult, page_encoder as _encoder

__all__ = [
    "PimKernel",
    "KernelComparison",
    "KERNEL_NAMES",
    "build_kernel",
    "vector_sum_kernel",
    "axpy_kernel",
    "gemv_kernel",
    "compare_host_pim",
]


@dataclasses.dataclass
class PimKernel:
    """A runnable PIM kernel with references and a host-only twin."""

    name: str
    description: str
    config: MemSysConfig
    n_values: int
    flops: int
    setup: _t.Callable[[PimExecMachine], None]
    execute: _t.Callable[[PimExecMachine], None]
    check: _t.Callable[[PimExecMachine], bool]
    result: _t.Callable[[PimExecMachine], float]
    expected: float
    host_trace: _t.Callable[[], _t.List[MemRequest]]


@dataclasses.dataclass
class KernelComparison:
    """Host-only vs PIM-mode execution of one kernel."""

    kernel: str
    correct: bool
    result: float
    expected: float
    pim: PimExecResult
    host: MemSysStats
    #: The machine that executed the PIM stream (sequencer counters
    #: for telemetry); ``None`` only for hand-built comparisons.
    machine: _t.Optional[PimExecMachine] = None

    @property
    def speedup(self) -> float:
        """Host-only over PIM-mode execution time."""
        return self.host.makespan_ns / self.pim.makespan_ns

    def row(self) -> dict:
        """Flat table row for reports."""
        return {
            "kernel": self.kernel,
            "host_ns": self.host.makespan_ns,
            "pim_ns": self.pim.makespan_ns,
            "speedup": self.speedup,
            "pim_requests": self.pim.n_requests,
            "host_requests": self.host.n_requests,
            "correct": self.correct,
        }


# ----------------------------------------------------------------------
# layout helpers
# ----------------------------------------------------------------------
def _geometry(config: MemSysConfig) -> _t.Tuple[int, int, int]:
    """(lanes, units, pages_per_row) of a geometry."""
    from .machine import LANE_BITS

    lanes = config.timing.page_bits // LANE_BITS
    units = config.n_channels * config.banks_per_channel
    return lanes, units, config.timing.pages_per_row


def _slot_addr(slot: int, pages_per_row: int) -> _t.Tuple[int, int]:
    return slot // pages_per_row, slot % pages_per_row


def _check_capacity(slots: int, config: MemSysConfig) -> None:
    capacity = config.rows_per_bank * config.timing.pages_per_row
    if slots > capacity:
        raise ValueError(
            f"kernel needs {slots} slots per bank; geometry holds "
            f"{capacity}"
        )


def _paged(
    values: np.ndarray, lanes: int, units: int
) -> _t.Tuple[np.ndarray, int]:
    """Zero-pad and reshape to (slots, units, lanes)."""
    granule = lanes * units
    padded = int(-(-values.shape[0] // granule)) * granule
    data = np.zeros(padded)
    data[: values.shape[0]] = values
    slots = padded // granule
    return data.reshape(slots, units, lanes), slots


def _unit_coords(
    unit: int, config: MemSysConfig
) -> _t.Tuple[int, int]:
    """(channel, flat_bank) of global unit index ``unit``."""
    per_channel = config.banks_per_channel
    return unit // per_channel, unit % per_channel


# ----------------------------------------------------------------------
# vector sum
# ----------------------------------------------------------------------
def vector_sum_kernel(
    n: int = 4096,
    config: _t.Optional[MemSysConfig] = None,
    seed: int = 0,
    values: _t.Optional[np.ndarray] = None,
) -> PimKernel:
    """``sum(x)`` over ``n`` values (or an explicit ``values`` array)."""
    config = config or MemSysConfig()
    lanes, units, ppr = _geometry(config)
    if values is None:
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
    else:
        x = np.asarray(values, dtype=np.float64).ravel()
        n = x.shape[0]
    if n < 1:
        raise ValueError("n must be >= 1")
    pages, slots = _paged(x, lanes, units)
    _check_capacity(slots, config)

    # per-unit reference: the same float64 adds in the same order as
    # ADD GRF_B0 <- BANK + GRF_B0 (result = page + accumulator)
    reference = np.zeros((units, lanes))
    for s in range(slots):
        reference = pages[s] + reference
    expected = float(reference.sum())

    def setup(machine: PimExecMachine) -> None:
        for s in range(slots):
            row, col = _slot_addr(s, ppr)
            for u in range(units):
                ch, bank = _unit_coords(u, config)
                machine.write_bank(ch, bank, row, col, pages[s, u])

    def execute(machine: PimExecMachine) -> None:
        machine.load_kernel(
            [
                PimCommand(
                    PimOpcode.ADD,
                    dst=Operand.grf_b(0),
                    src0=Operand.bank(),
                    src1=Operand.grf_b(0),
                ),
                PimCommand(PimOpcode.JUMP, target=0, count=slots - 1),
                PimCommand(PimOpcode.EXIT),
            ]
        )
        machine.run_kernel(
            [_slot_addr(s, ppr) for s in range(slots)]
        )
        for u in range(units):
            ch, bank = _unit_coords(u, config)
            machine.read_grf(ch, bank, "grf_b", 0)

    def check(machine: PimExecMachine) -> bool:
        return all(
            np.array_equal(
                machine.unit(*_unit_coords(u, config)).grf_b[0],
                reference[u],
            )
            for u in range(units)
        )

    def result(machine: PimExecMachine) -> float:
        partials = np.stack(
            [
                machine.unit(*_unit_coords(u, config)).grf_b[0]
                for u in range(units)
            ]
        )
        return float(partials.sum())

    def host_trace() -> _t.List[MemRequest]:
        encode = _encoder(config)
        requests = []
        for s in range(slots):
            row, col = _slot_addr(s, ppr)
            for u in range(units):
                ch, bank = _unit_coords(u, config)
                requests.append(
                    MemRequest(Op.READ, encode(ch, bank, row, col))
                )
        return requests

    return PimKernel(
        name="vector-sum",
        description=f"sum of a {n}-element vector",
        config=config,
        n_values=n,
        flops=n,
        setup=setup,
        execute=execute,
        check=check,
        result=result,
        expected=expected,
        host_trace=host_trace,
    )




# ----------------------------------------------------------------------
# AXPY
# ----------------------------------------------------------------------
def axpy_kernel(
    n: int = 4096,
    a: float = 1.5,
    config: _t.Optional[MemSysConfig] = None,
    seed: int = 0,
) -> PimKernel:
    """``y = a*x + y`` over ``n``-element vectors."""
    config = config or MemSysConfig()
    lanes, units, ppr = _geometry(config)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    x_pages, slots = _paged(x, lanes, units)
    y_pages, _ = _paged(y, lanes, units)
    _check_capacity(2 * slots, config)
    a_lanes = np.full(lanes, float(a))

    # reference matches MAC exactly: dst + src0*src1 with dst = y page
    # (FILLed into GRF_B0), src0 = x page (GRF_A0), src1 = SRF0 lanes
    reference = np.empty_like(y_pages)
    for s in range(slots):
        reference[s] = y_pages[s] + x_pages[s] * a_lanes

    def x_addr(s: int) -> _t.Tuple[int, int]:
        return _slot_addr(s, ppr)

    def y_addr(s: int) -> _t.Tuple[int, int]:
        return _slot_addr(slots + s, ppr)

    def setup(machine: PimExecMachine) -> None:
        for s in range(slots):
            for u in range(units):
                ch, bank = _unit_coords(u, config)
                machine.write_bank(ch, bank, *x_addr(s), x_pages[s, u])
                machine.write_bank(ch, bank, *y_addr(s), y_pages[s, u])

    def execute(machine: PimExecMachine) -> None:
        for ch in range(config.n_channels):
            machine.broadcast_scalar(ch, 0, a, *x_addr(0))
        machine.load_kernel(
            [
                PimCommand(
                    PimOpcode.FILL,
                    dst=Operand.grf_a(0),
                    src0=Operand.bank(),
                ),
                PimCommand(
                    PimOpcode.FILL,
                    dst=Operand.grf_b(0),
                    src0=Operand.bank(),
                ),
                PimCommand(
                    PimOpcode.MAC,
                    dst=Operand.grf_b(0),
                    src0=Operand.grf_a(0),
                    src1=Operand.srf(0),
                ),
                PimCommand(
                    PimOpcode.MOV,
                    dst=Operand.bank(),
                    src0=Operand.grf_b(0),
                ),
                PimCommand(PimOpcode.JUMP, target=0, count=slots - 1),
                PimCommand(PimOpcode.EXIT),
            ]
        )
        walk = []
        for s in range(slots):
            walk.extend([x_addr(s), y_addr(s), y_addr(s)])
        machine.run_kernel(walk)

    def check(machine: PimExecMachine) -> bool:
        return all(
            np.array_equal(
                machine.unit(*_unit_coords(u, config)).load_page(
                    *y_addr(s)
                ),
                reference[s, u],
            )
            for s in range(slots)
            for u in range(units)
        )

    def result(machine: PimExecMachine) -> float:
        total = 0.0
        for s in range(slots):
            for u in range(units):
                ch, bank = _unit_coords(u, config)
                total += float(
                    machine.unit(ch, bank).load_page(*y_addr(s)).sum()
                )
        return total

    def host_trace() -> _t.List[MemRequest]:
        encode = _encoder(config)
        requests = []
        for s in range(slots):
            for u in range(units):
                ch, bank = _unit_coords(u, config)
                requests.append(
                    MemRequest(Op.READ, encode(ch, bank, *x_addr(s)))
                )
            for u in range(units):
                ch, bank = _unit_coords(u, config)
                requests.append(
                    MemRequest(Op.READ, encode(ch, bank, *y_addr(s)))
                )
            for u in range(units):
                ch, bank = _unit_coords(u, config)
                requests.append(
                    MemRequest(Op.WRITE, encode(ch, bank, *y_addr(s)))
                )
        return requests

    return PimKernel(
        name="axpy",
        description=f"y = {a}*x + y over {n}-element vectors",
        config=config,
        n_values=2 * n,
        flops=2 * n,
        setup=setup,
        execute=execute,
        check=check,
        result=result,
        expected=float(reference.sum()),
        host_trace=host_trace,
    )


# ----------------------------------------------------------------------
# GEMV
# ----------------------------------------------------------------------
def gemv_kernel(
    n_cols: int = 64,
    config: _t.Optional[MemSysConfig] = None,
    seed: int = 0,
) -> PimKernel:
    """``y = A @ x`` with one output row per lane per bank.

    ``A`` is ``(lanes * units) x n_cols``: unit ``u`` stores rows
    ``[u*lanes, (u+1)*lanes)``, column ``j`` at slot ``j``.  The host
    broadcasts ``x[j]`` into SRF0 and triggers one all-bank ``MAC``
    per column — a mixed host+PIM command stream.
    """
    config = config or MemSysConfig()
    lanes, units, ppr = _geometry(config)
    if n_cols < 1:
        raise ValueError("n_cols must be >= 1")
    # the host-only twin also stages x (ceil(n_cols/lanes) pages) and
    # the y result page beyond the matrix slots
    _check_capacity(n_cols + -(-n_cols // lanes) + 1, config)
    m = lanes * units
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((m, n_cols))
    x = rng.standard_normal(n_cols)
    # pages[j][u] = A[u*lanes:(u+1)*lanes, j]
    pages = matrix.reshape(units, lanes, n_cols)

    reference = np.zeros((units, lanes))
    for j in range(n_cols):
        reference = reference + pages[:, :, j] * np.full(lanes, x[j])
    expected = float(reference.sum())

    mac = PimCommand(
        PimOpcode.MAC,
        dst=Operand.grf_b(0),
        src0=Operand.bank(),
        src1=Operand.srf(0),
    )

    def setup(machine: PimExecMachine) -> None:
        for j in range(n_cols):
            row, col = _slot_addr(j, ppr)
            for u in range(units):
                ch, bank = _unit_coords(u, config)
                machine.write_bank(ch, bank, row, col, pages[u, :, j])

    def execute(machine: PimExecMachine) -> None:
        # host-sequenced: the CRF holds the MAC microkernel; the host
        # interleaves SRF broadcasts of x[j] with the column walk
        machine.load_kernel(
            [mac, PimCommand(PimOpcode.EXIT)]
        )
        for j in range(n_cols):
            row, col = _slot_addr(j, ppr)
            for ch in range(config.n_channels):
                machine.broadcast_scalar(ch, 0, x[j], row, col)
            for ch in range(config.n_channels):
                machine.pim_step(ch, mac, row, col)
        for u in range(units):
            ch, bank = _unit_coords(u, config)
            machine.read_grf(ch, bank, "grf_b", 0)

    def check(machine: PimExecMachine) -> bool:
        return all(
            np.array_equal(
                machine.unit(*_unit_coords(u, config)).grf_b[0],
                reference[u],
            )
            for u in range(units)
        )

    def result(machine: PimExecMachine) -> float:
        return float(
            np.stack(
                [
                    machine.unit(*_unit_coords(u, config)).grf_b[0]
                    for u in range(units)
                ]
            ).sum()
        )

    def host_trace() -> _t.List[MemRequest]:
        encode = _encoder(config)
        requests = []
        # x pages live beyond the matrix slots
        x_slots = -(-n_cols // lanes)
        for p in range(x_slots):
            requests.append(
                MemRequest(
                    Op.READ,
                    encode(0, 0, *_slot_addr(n_cols + p, ppr)),
                )
            )
        for j in range(n_cols):
            row, col = _slot_addr(j, ppr)
            for u in range(units):
                ch, bank = _unit_coords(u, config)
                requests.append(
                    MemRequest(Op.READ, encode(ch, bank, row, col))
                )
        # y: one result page per unit
        for u in range(units):
            ch, bank = _unit_coords(u, config)
            requests.append(
                MemRequest(
                    Op.WRITE,
                    encode(ch, bank, *_slot_addr(n_cols + x_slots, ppr)),
                )
            )
        return requests

    return PimKernel(
        name="gemv",
        description=f"y = A @ x for a {m}x{n_cols} matrix",
        config=config,
        n_values=m * n_cols + n_cols,
        flops=2 * m * n_cols,
        setup=setup,
        execute=execute,
        check=check,
        result=result,
        expected=expected,
        host_trace=host_trace,
    )


#: Kernel registry for the CLI / experiment / benchmark.
KERNEL_NAMES = ("vector-sum", "axpy", "gemv")

_BUILDERS: _t.Dict[str, _t.Callable[..., PimKernel]] = {
    "vector-sum": vector_sum_kernel,
    "axpy": axpy_kernel,
    "gemv": gemv_kernel,
}


def build_kernel(
    name: str,
    config: _t.Optional[MemSysConfig] = None,
    seed: int = 0,
    **kwargs: _t.Any,
) -> PimKernel:
    """Build a named kernel (see :data:`KERNEL_NAMES`)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {KERNEL_NAMES}"
        ) from None
    return builder(config=config, seed=seed, **kwargs)


def compare_host_pim(
    kernel: PimKernel,
    engine: str = "auto",
    telemetry: _t.Optional[_t.Any] = None,
    host_telemetry: _t.Optional[_t.Any] = None,
) -> KernelComparison:
    """Execute ``kernel`` in PIM mode and replay its host-only twin.

    The data-staging phase is untimed (both systems start with data
    resident); the timed PIM stream covers kernel download, broadcasts,
    all-bank execution, and result readback.  ``telemetry`` (a
    :class:`~repro.telemetry.ReplayTelemetry`) instruments the **PIM**
    replay — the stream whose AB barriers and queueing the timeline
    renders; ``host_telemetry`` instruments the host-only twin (for
    side-by-side energy accounting), which otherwise replays
    uninstrumented.
    """
    machine = PimExecMachine(kernel.config)
    kernel.setup(machine)
    machine.reset_requests()
    kernel.execute(machine)
    pim = machine.replay(engine=engine, telemetry=telemetry)
    host = MemorySystem(kernel.config).replay(
        kernel.host_trace(), engine=engine, telemetry=host_telemetry
    )
    return KernelComparison(
        kernel=kernel.name,
        correct=kernel.check(machine),
        result=kernel.result(machine),
        expected=kernel.expected,
        pim=pim,
        host=host,
        machine=machine,
    )
