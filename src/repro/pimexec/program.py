"""HBM-PIMulator program-trace frontend.

Parses the program-trace dialect of HBM-PIMulator (see
``example.trace`` / ``all_inst.trace`` in that project) into structured
records, annotates per-record dependencies, and lowers the program to
the mixed host+PIM request stream the banked memory system replays::

    # comments and blank lines are ignored
    W MEM 0 2 8          # host write: channel 0, bank 2, row 8
    R MEM 0 2 8          # host read of the same location
    W GPR 0              # host fills a staging register page
    W CFR 0 1            # host writes config register 0 := 1
    AB W                 # all-bank broadcast of the staged page
    PIM MAC GRF,8 BANK,0,3,1 SRF,0   # one all-bank MAC at row 3 col 1
    PIM NOP
    PIM EXIT

Record vocabulary
-----------------
* ``R|W MEM ch bank row`` — a host transaction to an explicit bank
  location;
* ``R|W <address>`` and ``SB R|W <address>`` — single-bank host
  transactions by raw physical address;
* ``R|W GPR i`` — staging-register traffic, mapped to a reserved
  *GPR aperture* row (the highest row of bank 0).  The aperture is one
  row wide, so indices wrap onto its ``pages_per_row`` columns
  (``col = i % pages_per_row``): register *identity* — used by the
  dependency annotations — is always the raw index, while the lowered
  address only shapes timing (wrapped registers share a page and hit
  the open aperture row, like consecutive staging writes in hardware);
* ``R|W CFR i [data]`` — configuration-register traffic (reserved
  aperture row below the GPR row, same wrap rule);
* ``AB W`` — an all-bank register broadcast (:attr:`Op.AB`);
* ``PIM <opcode> [operands]`` — one dynamic PIM instruction per line
  (the trace is the *unrolled* instruction stream, so ``JUMP``/``EXIT``
  are control markers that cost no column access).

Any record may carry a trailing ``@<ns>`` issue timestamp (e.g.
``R MEM 0 2 8 @120.5``): the lowered request then arrives at the
memory system no earlier than that instant, replaying the program
under its recorded issue cadence instead of line-rate injection.
Timestamps must be non-decreasing and uniform — every record or none
(control markers, which lower to no request, may omit theirs).
Untimestamped programs can still be lowered at a fixed cadence via
``to_requests(..., interarrival_ns=...)``.

Dependencies
------------
Each record may name the index of the latest earlier record it must
follow: PIM instructions depend on the most recent kernel/config write
(``AB W`` or ``W CFR``), ``AB W`` depends on the ``W GPR`` that staged
its payload, and reads depend on the matching earlier write (same MEM
location / GPR index / CFR index).  Replay injects requests in program
order, so the annotated dependencies are satisfied by construction —
they exist so schedulers that *do* reorder (or future out-of-order
frontends) know what must not move.
"""

from __future__ import annotations

import dataclasses
import io
import math
import pathlib
import typing as _t

from ..errors import ConfigError, ProgramFormatError
from ..memsys import Coordinates, MemRequest, MemSysConfig, Op
from .commands import PimCommand, PimExecError, PimOpcode, parse_command
from .machine import PimExecMachine

__all__ = [
    "ProgramRecord",
    "PimProgram",
    "parse_pim_program",
]

#: Record kinds.
MEM = "mem"
GPR = "gpr"
CFR = "cfr"
AB = "ab"
SB = "sb"
PIM = "pim"


@dataclasses.dataclass
class ProgramRecord:
    """One parsed trace line."""

    lineno: int
    kind: str
    write: bool = False
    channel: int = 0
    bank: int = 0
    row: int = 0
    index: int = 0
    data: _t.Optional[int] = None
    addr: _t.Optional[int] = None
    command: _t.Optional[PimCommand] = None
    #: Index (into the record list) of the latest earlier record this
    #: one must follow, or ``None`` if unconstrained.
    depends_on: _t.Optional[int] = None
    #: Issue timestamp (ns) from a trailing ``@<ns>`` token, or
    #: ``None`` for line-rate issue.
    timestamp: _t.Optional[float] = None


class PimProgram:
    """A parsed HBM-PIMulator program trace."""

    def __init__(self, records: _t.Sequence[ProgramRecord]) -> None:
        self.records = list(records)

    def __len__(self) -> int:
        return len(self.records)

    def counts(self) -> _t.Dict[str, int]:
        """Record-kind histogram (for reports and tests)."""
        out: _t.Dict[str, int] = {}
        for record in self.records:
            out[record.kind] = out.get(record.kind, 0) + 1
        return out

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------
    def _apertures(self, config: MemSysConfig) -> _t.Tuple[int, int]:
        """(gpr_row, cfr_row): reserved register-aperture rows."""
        return config.rows_per_bank - 1, config.rows_per_bank - 2

    def _lowered(
        self, config: MemSysConfig, channel: int = 0
    ) -> _t.Iterator[
        _t.Tuple[ProgramRecord, _t.Optional[Op], int, int, int]
    ]:
        """Yield ``(record, op, addr, row, col)`` per record.

        ``op`` is ``None`` for control markers that cost no request
        (``PIM JUMP`` / ``PIM EXIT``).

        Raises
        ------
        ValueError
            On out-of-range coordinates/addresses, with the trace line
            number in the message.
        """
        amap = config.address_map()
        ppr = config.timing.pages_per_row
        gpr_row, cfr_row = self._apertures(config)
        per_group = config.banks_per_group
        row, col = 0, 0  # last PIM column access
        for record in self.records:
            lineno = record.lineno
            if record.kind == MEM:
                if not 0 <= record.channel < config.n_channels:
                    raise ProgramFormatError(
                        f"trace line {lineno}: channel {record.channel} "
                        f"out of range [0, {config.n_channels})"
                    )
                if not 0 <= record.bank < config.banks_per_channel:
                    raise ProgramFormatError(
                        f"trace line {lineno}: bank {record.bank} out "
                        f"of range [0, {config.banks_per_channel})"
                    )
                if not 0 <= record.row < config.rows_per_bank:
                    raise ProgramFormatError(
                        f"trace line {lineno}: row {record.row} out of "
                        f"range [0, {config.rows_per_bank})"
                    )
                addr = amap.encode(
                    Coordinates(
                        channel=record.channel,
                        bankgroup=record.bank // per_group,
                        bank=record.bank % per_group,
                        row=record.row,
                        column=0,
                    )
                )
                yield record, (
                    Op.WRITE if record.write else Op.READ
                ), addr, record.row, 0
            elif record.kind in (GPR, CFR):
                # one-row apertures: the index wraps onto the row's
                # columns (address/timing only — dependency tracking
                # keys on the raw index, never the wrapped address)
                aperture = gpr_row if record.kind == GPR else cfr_row
                addr = amap.encode(
                    Coordinates(
                        channel=channel,
                        row=aperture,
                        column=record.index % ppr,
                    )
                )
                yield record, (
                    Op.WRITE if record.write else Op.READ
                ), addr, aperture, record.index % ppr
            elif record.kind == SB:
                assert record.addr is not None
                if record.addr >= amap.capacity_bytes:
                    raise ProgramFormatError(
                        f"trace line {lineno}: address "
                        f"{record.addr:#x} beyond the "
                        f"{amap.capacity_bytes:#x}-byte address map"
                    )
                yield record, (
                    Op.WRITE if record.write else Op.READ
                ), record.addr, 0, 0
            elif record.kind == AB:
                addr = amap.encode(
                    Coordinates(channel=channel, row=row, column=col)
                )
                yield record, Op.AB, addr, row, col
            else:  # PIM
                command = _t.cast(PimCommand, record.command)
                if command.is_control:
                    yield record, None, 0, row, col
                    continue
                explicit = command.explicit_bank
                if explicit is not None:
                    row = explicit.row  # type: ignore[assignment]
                    col = explicit.col  # type: ignore[assignment]
                if not 0 <= row < config.rows_per_bank:
                    raise ProgramFormatError(
                        f"trace line {lineno}: PIM row {row} out of "
                        f"range [0, {config.rows_per_bank})"
                    )
                if not 0 <= col < ppr:
                    raise ProgramFormatError(
                        f"trace line {lineno}: PIM column {col} out of "
                        f"range [0, {ppr})"
                    )
                addr = amap.encode(
                    Coordinates(channel=channel, row=row, column=col)
                )
                yield record, Op.PIM, addr, row, col

    @property
    def timestamped(self) -> bool:
        """Whether the program's request-lowering records carry ``@<ns>``.

        Control markers (``PIM JUMP``/``EXIT``) lower to no request, so
        — exactly like the parser's uniformity rule — a stamp on one of
        them alone does not make the request stream timestamped.
        """
        return any(
            record.timestamp is not None
            for record in self.records
            if record.kind != PIM
            or not _t.cast(PimCommand, record.command).is_control
        )

    def to_requests(
        self,
        config: _t.Optional[MemSysConfig] = None,
        channel: int = 0,
        *,
        interarrival_ns: _t.Optional[float] = None,
        start_ns: float = 0.0,
    ) -> _t.List[MemRequest]:
        """Lower the program to its memory-request stream.

        PIM/AB records target ``channel`` (HBM-PIMulator traces record
        the lockstep command stream of one representative channel).
        Record ``@<ns>`` timestamps travel onto the lowered requests;
        for untimestamped programs, ``interarrival_ns`` stamps the
        ``i``-th emitted request at ``start_ns + i * interarrival_ns``
        (a fixed issue cadence) instead.
        """
        config = config or MemSysConfig()
        if interarrival_ns is not None:
            if self.timestamped:
                raise ConfigError(
                    "program records carry '@<ns>' timestamps; "
                    "interarrival_ns only applies to untimestamped "
                    "programs"
                )
            if not interarrival_ns >= 0.0:
                raise ConfigError(
                    f"interarrival_ns must be >= 0, got "
                    f"{interarrival_ns}"
                )
        requests = []
        for record, op, addr, _row, _col in self._lowered(
            config, channel
        ):
            if op is None:
                continue
            when = record.timestamp
            if interarrival_ns is not None:
                when = start_ns + len(requests) * interarrival_ns
            requests.append(MemRequest(op, addr, when))
        return requests

    def execute(
        self, machine: PimExecMachine, channel: int = 0
    ) -> _t.Dict[int, int]:
        """Run the program on ``machine`` (functional + request stream).

        PIM instructions execute on every bank of ``channel`` in
        lockstep (mutating GRF/SRF/bank state); host records append
        their requests without functional effect (the text format
        carries no data payloads — stage bank contents through
        :meth:`PimExecMachine.write_bank` first, untimed, via
        :meth:`PimExecMachine.reset_requests`).  Returns the
        ``{cfr_index: data}`` writes seen, for config-register checks.
        """
        cfr: _t.Dict[int, int] = {}
        for record, op, addr, row, col in self._lowered(
            machine.config, channel
        ):
            if record.kind == PIM:
                command = _t.cast(PimCommand, record.command)
                if command.is_control:
                    continue
                machine.pim_step(channel, command, row, col)
                if record.timestamp is not None:
                    # pim_step emitted exactly one all-bank request;
                    # stamp it with the record's issue time
                    machine.requests[-1].timestamp = record.timestamp
            elif op is not None:
                machine.requests.append(
                    MemRequest(op, addr, record.timestamp)
                )
                if record.kind == CFR and record.write:
                    cfr[record.index] = (
                        record.data if record.data is not None else 0
                    )
        return cfr

    def __repr__(self) -> str:
        return f"<PimProgram records={len(self.records)} {self.counts()}>"


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def _source_lines(
    source: _t.Union[str, pathlib.Path, _t.Iterable[str]]
) -> _t.Iterator[str]:
    if isinstance(source, pathlib.Path):
        with source.open("r") as handle:
            yield from handle
    elif isinstance(source, str):
        yield from io.StringIO(source)
    else:
        yield from source


def _int_field(token: str, lineno: int, what: str) -> int:
    try:
        value = int(token.strip('"'), 0)
    except ValueError:
        raise ProgramFormatError(
            f"trace line {lineno}: bad {what} {token!r}"
        ) from None
    if value < 0:
        raise ProgramFormatError(
            f"trace line {lineno}: negative {what} {token!r}"
        )
    return value


def parse_pim_program(
    source: _t.Union[str, pathlib.Path, _t.Iterable[str]]
) -> PimProgram:
    """Parse an HBM-PIMulator program trace.

    Accepts a :class:`~pathlib.Path` (streamed), a ``str`` of trace
    *content*, or any iterable of lines; ``#`` comments and blank lines
    are ignored.

    Raises
    ------
    ValueError
        On malformed lines (unknown record forms, bad integers, wrong
        arity, malformed PIM commands), with the 1-based line number.
    """
    records: _t.List[ProgramRecord] = []
    last_config: _t.Optional[int] = None  # latest AB W / W CFR
    last_gpr_any: _t.Optional[int] = None
    last_gpr: _t.Dict[int, int] = {}
    last_cfr: _t.Dict[int, int] = {}
    last_mem: _t.Dict[_t.Tuple[int, int, int], int] = {}
    last_time = 0.0

    for lineno, raw in enumerate(_source_lines(source), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        when: _t.Optional[float] = None
        if len(tokens) > 1 and tokens[-1].startswith("@"):
            stamp = tokens.pop()
            try:
                when = float(stamp[1:])
            except ValueError:
                raise ProgramFormatError(
                    f"trace line {lineno}: bad timestamp {stamp!r}"
                ) from None
            if not (when >= 0.0 and math.isfinite(when)):
                raise ProgramFormatError(
                    f"trace line {lineno}: timestamp {stamp!r} must "
                    "be a non-negative finite value"
                )
            if when < last_time:
                raise ProgramFormatError(
                    f"trace line {lineno}: timestamp {stamp!r} "
                    f"decreases (previous was {last_time!r})"
                )
            last_time = when
        head = tokens[0].upper()
        index = len(records)
        if head == "PIM":
            try:
                command = parse_command(" ".join(tokens[1:]))
            except PimExecError as error:
                raise ProgramFormatError(
                    f"trace line {lineno}: {error}"
                ) from None
            record = ProgramRecord(
                lineno, PIM, command=command, depends_on=last_config
            )
        elif head == "AB":
            if len(tokens) != 2 or tokens[1].upper() != "W":
                raise ProgramFormatError(
                    f"trace line {lineno}: expected 'AB W', got {raw!r}"
                )
            record = ProgramRecord(
                lineno, AB, write=True, depends_on=last_gpr_any
            )
            last_config = index
        elif head in ("R", "W", "SB"):
            if head == "SB":
                if len(tokens) != 3 or tokens[1].upper() not in ("R", "W"):
                    raise ProgramFormatError(
                        f"trace line {lineno}: expected "
                        f"'SB R|W ADDRESS', got {raw!r}"
                    )
                write = tokens[1].upper() == "W"
                rest = tokens[2:]
            else:
                write = head == "W"
                rest = tokens[1:]
            if not rest:
                raise ProgramFormatError(
                    f"trace line {lineno}: truncated record {raw!r}"
                )
            target = rest[0].upper()
            if target == "GPR":
                if len(rest) != 2:
                    raise ProgramFormatError(
                        f"trace line {lineno}: expected "
                        f"'{head} GPR INDEX', got {raw!r}"
                    )
                idx = _int_field(rest[1], lineno, "GPR index")
                record = ProgramRecord(
                    lineno, GPR, write=write, index=idx,
                    depends_on=None if write else last_gpr.get(idx),
                )
                if write:
                    last_gpr[idx] = index
                    last_gpr_any = index
            elif target == "CFR":
                if len(rest) not in (2, 3):
                    raise ProgramFormatError(
                        f"trace line {lineno}: expected "
                        f"'{head} CFR INDEX [DATA]', got {raw!r}"
                    )
                idx = _int_field(rest[1], lineno, "CFR index")
                data = (
                    _int_field(rest[2], lineno, "CFR data")
                    if len(rest) == 3
                    else None
                )
                record = ProgramRecord(
                    lineno, CFR, write=write, index=idx, data=data,
                    depends_on=None if write else last_cfr.get(idx),
                )
                if write:
                    last_cfr[idx] = index
                    last_config = index
            elif target == "MEM":
                if len(rest) != 4:
                    raise ProgramFormatError(
                        f"trace line {lineno}: expected "
                        f"'{head} MEM CHANNEL BANK ROW', got {raw!r}"
                    )
                ch = _int_field(rest[1], lineno, "channel")
                bank = _int_field(rest[2], lineno, "bank")
                row = _int_field(rest[3], lineno, "row")
                key = (ch, bank, row)
                record = ProgramRecord(
                    lineno, MEM, write=write,
                    channel=ch, bank=bank, row=row,
                    depends_on=None if write else last_mem.get(key),
                )
                if write:
                    last_mem[key] = index
            elif len(rest) == 1:
                addr = _int_field(rest[0], lineno, "address")
                record = ProgramRecord(
                    lineno, SB, write=write, addr=addr
                )
            else:
                raise ProgramFormatError(
                    f"trace line {lineno}: unknown record form {raw!r}"
                )
        else:
            raise ProgramFormatError(
                f"trace line {lineno}: unknown record {tokens[0]!r} "
                "(expected R/W/SB/AB/PIM)"
            )
        record.timestamp = when
        records.append(record)

    # a lowered request stream must be uniformly timestamped or
    # uniformly line-rate; control markers lower to no request, so
    # their (missing) timestamps don't count
    lowered = [
        record
        for record in records
        if record.kind != PIM
        or not _t.cast(PimCommand, record.command).is_control
    ]
    timed = sum(1 for record in lowered if record.timestamp is not None)
    if timed and timed != len(lowered):
        offender = next(
            record for record in lowered if record.timestamp is None
        )
        raise ProgramFormatError(
            f"trace line {offender.lineno}: record lacks the '@<ns>' "
            "timestamp carried by other records (timestamp every "
            "request-lowering record or none)"
        )
    return PimProgram(records)
