"""The executable PIM machine: execution units over the memory system.

:class:`PimExecMachine` instantiates execution units
(:class:`~repro.pimexec.regfile.BankExecUnit`) over a
:class:`~repro.memsys.MemSysConfig` geometry and one
:class:`~repro.pimexec.sequencer.CommandSequencer` per channel, and
plays host: every host-side action (bank writes, register broadcasts,
CRF loads, kernel column walks) both mutates the functional state and
appends the memory request the action costs.  :meth:`replay` then runs
the accumulated request stream through a fresh
:class:`~repro.memsys.MemorySystem`, so kernel time is measured by the
same banked controllers, address map, and row-buffer state machines as
any other trace — PIM kernel cycles pay real activation, page-access,
and queueing costs.

Execution modes
---------------
* ``bank_groups=False`` (default): one execution unit per bank — the
  full-width all-bank mode of PR 3.
* ``bank_groups=True``: *half-bank lockstep groups* in the HBM-PIM
  mold — one execution unit per even/odd bank **pair**, so a channel
  has ``banks_per_channel // 2`` units and each all-bank column access
  drives half as many vector lanes.  ``Operand.unit`` (the ``BANK,u``
  selector of the trace dialect) picks the even (0) or odd (1) bank of
  a pair.  The *timing difference is surfaced by construction*: the
  same kernel needs twice the dynamic instructions (and therefore twice
  the all-bank column accesses) to touch the same data, which the
  replayed request stream prices through the normal controllers.

Arithmetic dtype
----------------
``dtype="fp64"`` (default) keeps the idealized float64 model;
``dtype="fp16"`` computes in IEEE binary16 (NumPy ``float16``) with
per-operation round-to-nearest-even — see
:mod:`repro.pimexec.regfile` and ``docs/nn.md``.

Request vocabulary (see :class:`repro.memsys.request.Op`):

* ``READ``/``WRITE`` — host single-bank transactions (data staging,
  result collection);
* ``AB`` — all-bank register/command accesses (CRF microcode words,
  SRF/GRF broadcasts, GRF readback): one column access on the channel,
  no row-buffer interaction;
* ``PIM`` — one all-bank column access per dynamic kernel instruction,
  executing one CRF slot in every unit of the channel in lockstep.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ..memsys import (
    Coordinates,
    MemRequest,
    MemSysConfig,
    MemorySystem,
    MemSysStats,
    Op,
)
from .commands import GRF_REGS, PimCommand, PimExecError, SRF_REGS
from .regfile import BankExecUnit, DTYPES
from .sequencer import CommandSequencer

if _t.TYPE_CHECKING:  # pragma: no cover
    from .. import telemetry as _te

__all__ = ["PimExecMachine", "PimExecResult", "page_encoder"]

#: Hardware lane width in bits: HBM-PIM computes on 16-bit words.
LANE_BITS = 16


def page_encoder(
    config: MemSysConfig,
) -> _t.Callable[[int, int, int, int], int]:
    """``(channel, flat_bank, row, col) -> byte address`` for a geometry.

    The single flat-bank-to-coordinates convention shared by the
    machine and the kernel host-trace builders (one cached
    :class:`~repro.memsys.AddressMap`, so per-request encoding costs no
    map construction).
    """
    amap = config.address_map()
    per_group = config.banks_per_group

    def encode(channel: int, flat_bank: int, row: int, col: int) -> int:
        return amap.encode(
            Coordinates(
                channel=channel,
                bankgroup=flat_bank // per_group,
                bank=flat_bank % per_group,
                row=row,
                column=col,
            )
        )

    return encode


@dataclasses.dataclass
class PimExecResult:
    """Outcome of replaying a machine's request stream.

    Attributes
    ----------
    stats:
        The full :class:`~repro.memsys.MemSysStats` of the replay.
    engine:
        Which replay engine/tier served it.
    n_requests, n_pim, n_broadcast, n_host:
        Request mix of the replayed stream.
    """

    stats: MemSysStats
    engine: _t.Optional[str]
    n_requests: int
    n_pim: int
    n_broadcast: int
    n_host: int

    @property
    def makespan_ns(self) -> float:
        return self.stats.makespan_ns


class PimExecMachine:
    """PIM execution units over a banked memory system.

    Parameters
    ----------
    config:
        Memory-system geometry/timing/policy (paper defaults if
        omitted).  The page width fixes the vector lane count:
        ``page_bits // 16`` 16-bit hardware lanes.
    dtype:
        Arithmetic dtype: ``"fp64"`` (default, idealized) or
        ``"fp16"`` (IEEE binary16 rounding per operation).
    bank_groups:
        ``False`` (default): one execution unit per bank.  ``True``:
        half-bank lockstep groups — one unit per even/odd bank pair
        (requires an even ``banks_per_channel``), with ``Operand.unit``
        selecting the pair's even or odd bank.
    """

    def __init__(
        self,
        config: _t.Optional[MemSysConfig] = None,
        dtype: str = "fp64",
        bank_groups: bool = False,
    ) -> None:
        self.config = config or MemSysConfig()
        if dtype not in DTYPES:
            raise PimExecError(
                f"unknown dtype {dtype!r}; available: {tuple(DTYPES)}"
            )
        self.dtype = dtype
        self.np_dtype = DTYPES[dtype]
        self.bank_groups = bool(bank_groups)
        self.ports = 2 if self.bank_groups else 1
        if self.config.banks_per_channel % self.ports:
            raise PimExecError(
                "bank-group mode pairs even/odd banks; "
                f"banks_per_channel={self.config.banks_per_channel} "
                "is not even"
            )
        self.lanes = self.config.timing.page_bits // LANE_BITS
        if self.lanes < 1:
            raise ValueError(
                f"page_bits={self.config.timing.page_bits} too narrow "
                f"for {LANE_BITS}-bit lanes"
            )
        self.addr_map = self.config.address_map()
        self.units: _t.List[_t.List[BankExecUnit]] = [
            [
                BankExecUnit(
                    self.lanes,
                    name=f"ch{ch}.u{index}",
                    dtype=self.dtype,
                    ports=self.ports,
                )
                for index in range(self.units_per_channel)
            ]
            for ch in range(self.config.n_channels)
        ]
        self.sequencers = [
            CommandSequencer()
            for _ in range(self.config.n_channels)
        ]
        self._encode = page_encoder(self.config)
        #: The accumulated request stream (cleared by
        #: :meth:`reset_requests`, consumed by :meth:`replay`).
        self.requests: _t.List[MemRequest] = []

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    @property
    def n_channels(self) -> int:
        return self.config.n_channels

    @property
    def banks_per_channel(self) -> int:
        return self.config.banks_per_channel

    @property
    def units_per_channel(self) -> int:
        """Execution units per channel (half the banks in group mode)."""
        return self.config.banks_per_channel // self.ports

    @property
    def total_units(self) -> int:
        return self.n_channels * self.units_per_channel

    def unit(self, channel: int, index: int) -> BankExecUnit:
        """The ``index``-th execution unit of ``channel``.

        With ``bank_groups=False`` unit indices coincide with flat bank
        indices; in group mode unit ``k`` serves banks ``2k`` (even
        port 0) and ``2k + 1`` (odd port 1).
        """
        return self.units[channel][index]

    def unit_for_bank(
        self, channel: int, flat_bank: int
    ) -> _t.Tuple[BankExecUnit, int]:
        """``(unit, port)`` serving ``flat_bank`` of ``channel``."""
        return (
            self.units[channel][flat_bank // self.ports],
            flat_bank % self.ports,
        )

    def iter_units(
        self,
    ) -> _t.Iterator[_t.Tuple[int, int, BankExecUnit]]:
        """Yield ``(channel, unit_index, unit)`` in address order."""
        for ch, row in enumerate(self.units):
            for index, unit in enumerate(row):
                yield ch, index, unit

    def encode(
        self, channel: int, flat_bank: int, row: int, col: int
    ) -> int:
        """Byte address of a page, from flat in-channel bank index."""
        return self._encode(channel, flat_bank, row, col)

    def _emit(self, op: Op, addr: int) -> MemRequest:
        request = MemRequest(op, addr)
        self.requests.append(request)
        return request

    def _channels(
        self, channels: _t.Optional[_t.Sequence[int]]
    ) -> _t.List[int]:
        return (
            list(range(self.n_channels))
            if channels is None
            else list(channels)
        )

    # ------------------------------------------------------------------
    # host-side actions (functional effect + request cost)
    # ------------------------------------------------------------------
    def write_bank(
        self,
        channel: int,
        flat_bank: int,
        row: int,
        col: int,
        values: _t.Sequence[float],
    ) -> None:
        """Host write of one page into one bank."""
        unit, port = self.unit_for_bank(channel, flat_bank)
        unit.store_page(row, col, values, port)
        self._emit(Op.WRITE, self.encode(channel, flat_bank, row, col))

    def read_bank(
        self, channel: int, flat_bank: int, row: int, col: int
    ) -> np.ndarray:
        """Host read of one page from one bank."""
        self._emit(Op.READ, self.encode(channel, flat_bank, row, col))
        unit, port = self.unit_for_bank(channel, flat_bank)
        return unit.load_page(row, col, port)

    def broadcast_scalar(
        self,
        channel: int,
        index: int,
        value: float,
        row: int = 0,
        col: int = 0,
    ) -> None:
        """AB-mode write of ``SRF[index]`` in every unit of a channel.

        ``row``/``col`` only shape the broadcast's address (useful to
        keep it adjacent to the kernel's next data access); AB requests
        never touch row buffers.  The value rounds to the machine's
        dtype on assignment.
        """
        if not 0 <= index < SRF_REGS:
            raise PimExecError(
                f"SRF index {index} out of range [0, {SRF_REGS})"
            )
        for unit in self.units[channel]:
            unit.srf[index] = float(value)
        self._emit(Op.AB, self.encode(channel, 0, row, col))

    def broadcast_page(
        self,
        channel: int,
        space: str,
        index: int,
        values: _t.Sequence[float],
        row: int = 0,
        col: int = 0,
    ) -> None:
        """AB-mode write of one GRF register in every unit of a channel."""
        if not 0 <= index < GRF_REGS:
            raise PimExecError(
                f"GRF index {index} out of range [0, {GRF_REGS})"
            )
        page = np.asarray(values, dtype=self.np_dtype)
        if page.shape != (self.lanes,):
            raise PimExecError(
                f"broadcast page must have {self.lanes} lanes, got "
                f"shape {page.shape}"
            )
        for unit in self.units[channel]:
            if space == "grf_a":
                unit.grf_a[index] = page
            elif space == "grf_b":
                unit.grf_b[index] = page
            else:
                raise PimExecError(
                    f"broadcast space must be grf_a/grf_b, got {space!r}"
                )
        self._emit(Op.AB, self.encode(channel, 0, row, col))

    def read_grf(
        self, channel: int, unit_index: int, space: str, index: int
    ) -> np.ndarray:
        """Read back one GRF register (an AB-mode column access)."""
        if not 0 <= index < GRF_REGS:
            raise PimExecError(
                f"GRF index {index} out of range [0, {GRF_REGS})"
            )
        unit = self.unit(channel, unit_index)
        if space == "grf_a":
            value = unit.grf_a[index]
        elif space == "grf_b":
            value = unit.grf_b[index]
        else:
            raise PimExecError(
                f"read_grf space must be grf_a/grf_b, got {space!r}"
            )
        self._emit(
            Op.AB, self.encode(channel, unit_index * self.ports, 0, 0)
        )
        return value.copy()

    def load_kernel(
        self,
        commands: _t.Sequence[PimCommand],
        channels: _t.Optional[_t.Sequence[int]] = None,
    ) -> None:
        """Broadcast a microkernel into the CRF of each channel.

        Costs one AB register write per CRF slot per channel (the
        microcode download HBM-PIM performs before every kernel).
        """
        commands = list(commands)
        for channel in self._channels(channels):
            self.sequencers[channel].load(commands)
            for _ in commands:
                self._emit(Op.AB, self.encode(channel, 0, 0, 0))

    # ------------------------------------------------------------------
    # kernel execution
    # ------------------------------------------------------------------
    def _step(
        self, channel: int, command: PimCommand, row: int, col: int
    ) -> None:
        for unit in self.units[channel]:
            unit.execute(command, row, col)
        self._emit(Op.PIM, self.encode(channel, 0, row, col))

    def pim_step(
        self, channel: int, command: PimCommand, row: int, col: int
    ) -> None:
        """Execute one command in every unit of ``channel`` at (row, col).

        The single-step escape hatch for host-sequenced kernels (e.g.
        GEMV, which re-broadcasts an SRF scalar between steps); looped
        kernels go through :meth:`load_kernel` + :meth:`run_kernel`.
        """
        if command.is_control:
            raise PimExecError(
                f"{command.opcode.value} is sequencer control, not a "
                "bank operation"
            )
        self._step(channel, command, row, col)

    def run_kernel(
        self,
        walk: _t.Union[
            _t.Sequence[_t.Tuple[int, int]],
            _t.Mapping[int, _t.Sequence[_t.Tuple[int, int]]],
        ],
        channels: _t.Optional[_t.Sequence[int]] = None,
    ) -> int:
        """Run the loaded CRF kernel to ``EXIT`` on each channel.

        ``walk`` is the column-access schedule: one ``(row, col)``
        sequence shared by every channel, or a per-channel mapping.
        Channels advance round-robin, one dynamic instruction each, so
        their all-bank request streams interleave and the memory system
        serves them concurrently.  Returns the total number of dynamic
        instructions executed (all channels).
        """
        targets = self._channels(channels)
        if isinstance(walk, _t.Mapping):
            walks = {ch: walk[ch] for ch in targets}
        else:
            walks = {ch: walk for ch in targets}
        steppers = {
            ch: self.sequencers[ch].run(walks[ch]) for ch in targets
        }
        executed = 0
        active = list(targets)
        while active:
            still_running = []
            for channel in active:
                step = next(steppers[channel], None)
                if step is None:
                    continue
                command, row, col = step
                self._step(channel, command, row, col)
                executed += 1
                still_running.append(channel)
            active = still_running
        return executed

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def reset_requests(self) -> None:
        """Drop the accumulated request stream (e.g. after data load)."""
        self.requests = []

    def replay(
        self,
        engine: str = "auto",
        telemetry: _t.Optional["_te.ReplayTelemetry"] = None,
    ) -> PimExecResult:
        """Replay the accumulated stream through a fresh MemorySystem.

        ``telemetry`` is threaded through to
        :meth:`~repro.memsys.MemorySystem.replay`, so per-request
        latency recording and phase profiling cover the AB-barrier
        stream exactly as they cover plain traces.
        """
        if not self.requests:
            raise PimExecError("no requests accumulated to replay")
        requests = [
            MemRequest(r.op, r.addr, r.timestamp) for r in self.requests
        ]
        system = MemorySystem(self.config)
        stats = system.replay(requests, engine=engine, telemetry=telemetry)
        ops = [r.op for r in requests]
        return PimExecResult(
            stats=stats,
            engine=system.last_replay_engine,
            n_requests=len(requests),
            n_pim=sum(op is Op.PIM for op in ops),
            n_broadcast=sum(op is Op.AB for op in ops),
            n_host=sum(op in (Op.READ, Op.WRITE) for op in ops),
        )

    def sequencer_stats(self) -> _t.List[_t.Dict[str, int]]:
        """Per-channel sequencer counters (see
        :meth:`CommandSequencer.stats`), in channel order."""
        return [sequencer.stats() for sequencer in self.sequencers]

    def __repr__(self) -> str:
        mode = "bank-group" if self.bank_groups else "per-bank"
        return (
            f"<PimExecMachine {self.n_channels}ch x "
            f"{self.units_per_channel}units ({mode}, {self.dtype}) "
            f"lanes={self.lanes} requests={len(self.requests)}>"
        )
