"""The executable PIM machine: execution units over the memory system.

:class:`PimExecMachine` instantiates execution units
(:class:`~repro.pimexec.regfile.BankExecUnit`) over a
:class:`~repro.memsys.MemSysConfig` geometry and one
:class:`~repro.pimexec.sequencer.CommandSequencer` per channel, and
plays host: every host-side action (bank writes, register broadcasts,
CRF loads, kernel column walks) both mutates the functional state and
appends the memory request the action costs.  :meth:`replay` then runs
the accumulated request stream through a fresh
:class:`~repro.memsys.MemorySystem`, so kernel time is measured by the
same banked controllers, address map, and row-buffer state machines as
any other trace — PIM kernel cycles pay real activation, page-access,
and queueing costs.

Execution modes
---------------
* ``bank_groups=False`` (default): one execution unit per bank — the
  full-width all-bank mode of PR 3.
* ``bank_groups=True``: *half-bank lockstep groups* in the HBM-PIM
  mold — one execution unit per even/odd bank **pair**, so a channel
  has ``banks_per_channel // 2`` units and each all-bank column access
  drives half as many vector lanes.  ``Operand.unit`` (the ``BANK,u``
  selector of the trace dialect) picks the even (0) or odd (1) bank of
  a pair.  The *timing difference is surfaced by construction*: the
  same kernel needs twice the dynamic instructions (and therefore twice
  the all-bank column accesses) to touch the same data, which the
  replayed request stream prices through the normal controllers.

Arithmetic dtype
----------------
``dtype="fp64"`` (default) keeps the idealized float64 model;
``dtype="fp16"`` computes in IEEE binary16 (NumPy ``float16``) with
per-operation round-to-nearest-even — see
:mod:`repro.pimexec.regfile` and ``docs/nn.md``.

Request vocabulary (see :class:`repro.memsys.request.Op`):

* ``READ``/``WRITE`` — host single-bank transactions (data staging,
  result collection);
* ``AB`` — all-bank register/command accesses (CRF microcode words,
  SRF/GRF broadcasts, GRF readback): one column access on the channel,
  no row-buffer interaction;
* ``PIM`` — one all-bank column access per dynamic kernel instruction,
  executing one CRF slot in every unit of the channel in lockstep.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ..memsys import (
    Coordinates,
    MemRequest,
    MemSysConfig,
    MemorySystem,
    MemSysStats,
    Op,
    PackedTrace,
)
from ..memsys.request import OPS_BY_CODE
from .commands import GRF_REGS, PimCommand, PimExecError, SRF_REGS
from .regfile import BankExecUnit, DTYPES, UnitView, VectorUnitArray
from .sequencer import CommandSequencer

if _t.TYPE_CHECKING:  # pragma: no cover
    from .. import telemetry as _te

__all__ = [
    "PimExecMachine",
    "PimExecResult",
    "UNIT_MODES",
    "page_encoder",
]

#: Execution-unit backends: ``"vectorized"`` (default, one
#: :class:`~repro.pimexec.regfile.VectorUnitArray` executing each
#: lockstep command across every unit in one NumPy op) or ``"scalar"``
#: (one :class:`~repro.pimexec.regfile.BankExecUnit` per unit, the
#: reference implementation).  Both are bit-identical by construction;
#: the equivalence suite pins it.
UNIT_MODES = ("vectorized", "scalar")

#: Either unit backend presents the same per-unit surface.
ExecUnit = _t.Union[BankExecUnit, UnitView]

#: Packed request-log columns: op code, channel, flat bank, row, col.
LogColumns = _t.Tuple[
    _t.List[int], _t.List[int], _t.List[int], _t.List[int], _t.List[int]
]


def _empty_log() -> LogColumns:
    return ([], [], [], [], [])

#: Hardware lane width in bits: HBM-PIM computes on 16-bit words.
LANE_BITS = 16


def page_encoder(
    config: MemSysConfig,
) -> _t.Callable[[int, int, int, int], int]:
    """``(channel, flat_bank, row, col) -> byte address`` for a geometry.

    The single flat-bank-to-coordinates convention shared by the
    machine and the kernel host-trace builders (one cached
    :class:`~repro.memsys.AddressMap`, so per-request encoding costs no
    map construction).
    """
    amap = config.address_map()
    per_group = config.banks_per_group

    def encode(channel: int, flat_bank: int, row: int, col: int) -> int:
        return amap.encode(
            Coordinates(
                channel=channel,
                bankgroup=flat_bank // per_group,
                bank=flat_bank % per_group,
                row=row,
                column=col,
            )
        )

    return encode


@dataclasses.dataclass
class PimExecResult:
    """Outcome of replaying a machine's request stream.

    Attributes
    ----------
    stats:
        The full :class:`~repro.memsys.MemSysStats` of the replay.
    engine:
        Which replay engine/tier served it.
    n_requests, n_pim, n_broadcast, n_host:
        Request mix of the replayed stream.
    """

    stats: MemSysStats
    engine: _t.Optional[str]
    n_requests: int
    n_pim: int
    n_broadcast: int
    n_host: int

    @property
    def makespan_ns(self) -> float:
        return self.stats.makespan_ns


class PimExecMachine:
    """PIM execution units over a banked memory system.

    Parameters
    ----------
    config:
        Memory-system geometry/timing/policy (paper defaults if
        omitted).  The page width fixes the vector lane count:
        ``page_bits // 16`` 16-bit hardware lanes.
    dtype:
        Arithmetic dtype: ``"fp64"`` (default, idealized) or
        ``"fp16"`` (IEEE binary16 rounding per operation).
    bank_groups:
        ``False`` (default): one execution unit per bank.  ``True``:
        half-bank lockstep groups — one unit per even/odd bank pair
        (requires an even ``banks_per_channel``), with ``Operand.unit``
        selecting the pair's even or odd bank.
    unit_mode:
        One of :data:`UNIT_MODES`: ``"vectorized"`` (default) backs
        every unit with one shared
        :class:`~repro.pimexec.regfile.VectorUnitArray` and executes
        lockstep commands across all units in single NumPy ops;
        ``"scalar"`` keeps one
        :class:`~repro.pimexec.regfile.BankExecUnit` per unit (the
        reference implementation the equivalence suite compares
        against).  Functional state is bit-identical either way.
    """

    def __init__(
        self,
        config: _t.Optional[MemSysConfig] = None,
        dtype: str = "fp64",
        bank_groups: bool = False,
        unit_mode: str = "vectorized",
    ) -> None:
        self.config = config or MemSysConfig()
        if unit_mode not in UNIT_MODES:
            raise PimExecError(
                f"unknown unit_mode {unit_mode!r}; available: "
                f"{UNIT_MODES}"
            )
        self.unit_mode = unit_mode
        if dtype not in DTYPES:
            raise PimExecError(
                f"unknown dtype {dtype!r}; available: {tuple(DTYPES)}"
            )
        self.dtype = dtype
        self.np_dtype = DTYPES[dtype]
        self.bank_groups = bool(bank_groups)
        self.ports = 2 if self.bank_groups else 1
        if self.config.banks_per_channel % self.ports:
            raise PimExecError(
                "bank-group mode pairs even/odd banks; "
                f"banks_per_channel={self.config.banks_per_channel} "
                "is not even"
            )
        self.lanes = self.config.timing.page_bits // LANE_BITS
        if self.lanes < 1:
            raise ValueError(
                f"page_bits={self.config.timing.page_bits} too narrow "
                f"for {LANE_BITS}-bit lanes"
            )
        self.addr_map = self.config.address_map()
        self._vector: _t.Optional[VectorUnitArray] = None
        if unit_mode == "vectorized":
            self._vector = VectorUnitArray(
                self.config.n_channels,
                self.units_per_channel,
                self.lanes,
                dtype=self.dtype,
                ports=self.ports,
            )
            self.units: _t.List[_t.List[ExecUnit]] = [
                [
                    UnitView(self._vector, ch, index)
                    for index in range(self.units_per_channel)
                ]
                for ch in range(self.config.n_channels)
            ]
        else:
            self.units = [
                [
                    BankExecUnit(
                        self.lanes,
                        name=f"ch{ch}.u{index}",
                        dtype=self.dtype,
                        ports=self.ports,
                    )
                    for index in range(self.units_per_channel)
                ]
                for ch in range(self.config.n_channels)
            ]
        self.sequencers = [
            CommandSequencer()
            for _ in range(self.config.n_channels)
        ]
        self._encode = page_encoder(self.config)
        # The accumulated request stream lives packed until someone
        # asks for request *objects* (see :attr:`requests`): closed
        # chunks — ("flat", op, ch, bank, row, col columns) or
        # ("block", targets, rows, cols) lockstep blocks, one entry
        # per dynamic instruction — plus the open flat tail ``_log``.
        self._chunks: _t.List[tuple] = []
        self._log = _empty_log()
        self._count = 0
        self._objects: _t.Optional[_t.List[MemRequest]] = None

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    @property
    def n_channels(self) -> int:
        return self.config.n_channels

    @property
    def banks_per_channel(self) -> int:
        return self.config.banks_per_channel

    @property
    def units_per_channel(self) -> int:
        """Execution units per channel (half the banks in group mode)."""
        return self.config.banks_per_channel // self.ports

    @property
    def total_units(self) -> int:
        return self.n_channels * self.units_per_channel

    def unit(self, channel: int, index: int) -> ExecUnit:
        """The ``index``-th execution unit of ``channel``.

        With ``bank_groups=False`` unit indices coincide with flat bank
        indices; in group mode unit ``k`` serves banks ``2k`` (even
        port 0) and ``2k + 1`` (odd port 1).
        """
        return self.units[channel][index]

    def unit_for_bank(
        self, channel: int, flat_bank: int
    ) -> _t.Tuple[ExecUnit, int]:
        """``(unit, port)`` serving ``flat_bank`` of ``channel``."""
        return (
            self.units[channel][flat_bank // self.ports],
            flat_bank % self.ports,
        )

    def iter_units(
        self,
    ) -> _t.Iterator[_t.Tuple[int, int, ExecUnit]]:
        """Yield ``(channel, unit_index, unit)`` in address order."""
        for ch, row in enumerate(self.units):
            for index, unit in enumerate(row):
                yield ch, index, unit

    def encode(
        self, channel: int, flat_bank: int, row: int, col: int
    ) -> int:
        """Byte address of a page, from flat in-channel bank index."""
        return self._encode(channel, flat_bank, row, col)

    # ------------------------------------------------------------------
    # the request log
    # ------------------------------------------------------------------
    @property
    def requests(self) -> _t.List[MemRequest]:
        """The accumulated request stream, as mutable objects.

        Requests accumulate internally as five packed integer columns
        (op, channel, bank, row, col) — the zero-object form
        :meth:`replay` turns straight into a
        :class:`~repro.memsys.PackedTrace`.  First access of this
        property materializes the columns into
        :class:`~repro.memsys.MemRequest` objects and keeps the machine
        in object mode (appends and per-request mutation, e.g. the
        timestamps :class:`~repro.pimexec.program.PimProgram` stamps,
        behave exactly as before) until :meth:`reset_requests`.
        """
        if self._objects is None:
            encode = self._encode
            pim = Op.PIM
            objects: _t.List[MemRequest] = []
            for chunk in self._iter_chunks():
                if chunk[0] == "flat":
                    _, ops_l, ch_l, bank_l, row_l, col_l = chunk
                    objects.extend(
                        MemRequest(
                            OPS_BY_CODE[op],
                            encode(ch, bank, row, col),
                        )
                        for op, ch, bank, row, col in zip(
                            ops_l, ch_l, bank_l, row_l, col_l
                        )
                    )
                else:
                    _, targets, rows_l, cols_l = chunk
                    objects.extend(
                        MemRequest(pim, encode(ch, 0, row, col))
                        for row, col in zip(rows_l, cols_l)
                        for ch in targets
                    )
            self._chunks = []
            self._log = _empty_log()
            self._count = 0
            self._objects = objects
        return self._objects

    @requests.setter
    def requests(self, value: _t.List[MemRequest]) -> None:
        self._chunks = []
        self._log = _empty_log()
        self._count = 0
        self._objects = list(value)

    @property
    def n_requests(self) -> int:
        """Accumulated request count (cheap in either log mode)."""
        if self._objects is not None:
            return len(self._objects)
        return self._count

    def _iter_chunks(self) -> _t.Iterator[tuple]:
        """Closed chunks plus the open flat tail, in stream order."""
        yield from self._chunks
        if self._log[0]:
            yield ("flat",) + self._log

    def _push_block(
        self,
        targets: _t.Sequence[int],
        rows: _t.List[int],
        cols: _t.List[int],
    ) -> None:
        """Append one lockstep block chunk (closing the flat tail)."""
        if self._log[0]:
            self._chunks.append(("flat",) + self._log)
            self._log = _empty_log()
        self._chunks.append(("block", tuple(targets), rows, cols))
        self._count += len(targets) * len(rows)

    def _emit(
        self, op: Op, channel: int, flat_bank: int, row: int, col: int
    ) -> None:
        if self._objects is not None:
            self._objects.append(
                MemRequest(op, self.encode(channel, flat_bank, row, col))
            )
            return
        ops_l, ch_l, bank_l, row_l, col_l = self._log
        ops_l.append(op.code)
        ch_l.append(channel)
        bank_l.append(flat_bank)
        row_l.append(row)
        col_l.append(col)
        self._count += 1

    def _channels(
        self, channels: _t.Optional[_t.Sequence[int]]
    ) -> _t.List[int]:
        return (
            list(range(self.n_channels))
            if channels is None
            else list(channels)
        )

    # ------------------------------------------------------------------
    # host-side actions (functional effect + request cost)
    # ------------------------------------------------------------------
    def write_bank(
        self,
        channel: int,
        flat_bank: int,
        row: int,
        col: int,
        values: _t.Sequence[float],
    ) -> None:
        """Host write of one page into one bank."""
        unit, port = self.unit_for_bank(channel, flat_bank)
        unit.store_page(row, col, values, port)
        self._emit(Op.WRITE, channel, flat_bank, row, col)

    def read_bank(
        self, channel: int, flat_bank: int, row: int, col: int
    ) -> np.ndarray:
        """Host read of one page from one bank."""
        self._emit(Op.READ, channel, flat_bank, row, col)
        unit, port = self.unit_for_bank(channel, flat_bank)
        return unit.load_page(row, col, port)

    def broadcast_scalar(
        self,
        channel: int,
        index: int,
        value: float,
        row: int = 0,
        col: int = 0,
    ) -> None:
        """AB-mode write of ``SRF[index]`` in every unit of a channel.

        ``row``/``col`` only shape the broadcast's address (useful to
        keep it adjacent to the kernel's next data access); AB requests
        never touch row buffers.  The value rounds to the machine's
        dtype on assignment.
        """
        if not 0 <= index < SRF_REGS:
            raise PimExecError(
                f"SRF index {index} out of range [0, {SRF_REGS})"
            )
        if self._vector is not None:
            self._vector.srf[channel, :, index] = float(value)
        else:
            for unit in self.units[channel]:
                unit.srf[index] = float(value)
        self._emit(Op.AB, channel, 0, row, col)

    def broadcast_page(
        self,
        channel: int,
        space: str,
        index: int,
        values: _t.Sequence[float],
        row: int = 0,
        col: int = 0,
    ) -> None:
        """AB-mode write of one GRF register in every unit of a channel."""
        if not 0 <= index < GRF_REGS:
            raise PimExecError(
                f"GRF index {index} out of range [0, {GRF_REGS})"
            )
        page = np.asarray(values, dtype=self.np_dtype)
        if page.shape != (self.lanes,):
            raise PimExecError(
                f"broadcast page must have {self.lanes} lanes, got "
                f"shape {page.shape}"
            )
        if space not in ("grf_a", "grf_b"):
            raise PimExecError(
                f"broadcast space must be grf_a/grf_b, got {space!r}"
            )
        if self._vector is not None:
            grf = (
                self._vector.grf_a
                if space == "grf_a"
                else self._vector.grf_b
            )
            grf[channel, :, index] = page
        else:
            for unit in self.units[channel]:
                if space == "grf_a":
                    unit.grf_a[index] = page
                else:
                    unit.grf_b[index] = page
        self._emit(Op.AB, channel, 0, row, col)

    def read_grf(
        self, channel: int, unit_index: int, space: str, index: int
    ) -> np.ndarray:
        """Read back one GRF register (an AB-mode column access)."""
        if not 0 <= index < GRF_REGS:
            raise PimExecError(
                f"GRF index {index} out of range [0, {GRF_REGS})"
            )
        unit = self.unit(channel, unit_index)
        if space == "grf_a":
            value = unit.grf_a[index]
        elif space == "grf_b":
            value = unit.grf_b[index]
        else:
            raise PimExecError(
                f"read_grf space must be grf_a/grf_b, got {space!r}"
            )
        self._emit(Op.AB, channel, unit_index * self.ports, 0, 0)
        return value.copy()

    def load_kernel(
        self,
        commands: _t.Sequence[PimCommand],
        channels: _t.Optional[_t.Sequence[int]] = None,
    ) -> None:
        """Broadcast a microkernel into the CRF of each channel.

        Costs one AB register write per CRF slot per channel (the
        microcode download HBM-PIM performs before every kernel).
        """
        commands = list(commands)
        for channel in self._channels(channels):
            self.sequencers[channel].load(commands)
            for _ in commands:
                self._emit(Op.AB, channel, 0, 0, 0)

    # ------------------------------------------------------------------
    # kernel execution
    # ------------------------------------------------------------------
    def _step(
        self, channel: int, command: PimCommand, row: int, col: int
    ) -> None:
        if self._vector is not None:
            self._vector.execute(command, row, col, (channel,))
        else:
            for unit in self.units[channel]:
                unit.execute(command, row, col)
        self._emit(Op.PIM, channel, 0, row, col)

    def pim_step(
        self, channel: int, command: PimCommand, row: int, col: int
    ) -> None:
        """Execute one command in every unit of ``channel`` at (row, col).

        The single-step escape hatch for host-sequenced kernels (e.g.
        GEMV, which re-broadcasts an SRF scalar between steps); looped
        kernels go through :meth:`load_kernel` + :meth:`run_kernel`.
        """
        if command.is_control:
            raise PimExecError(
                f"{command.opcode.value} is sequencer control, not a "
                "bank operation"
            )
        self._step(channel, command, row, col)

    def run_kernel(
        self,
        walk: _t.Union[
            _t.Sequence[_t.Tuple[int, int]],
            _t.Mapping[int, _t.Sequence[_t.Tuple[int, int]]],
        ],
        channels: _t.Optional[_t.Sequence[int]] = None,
    ) -> int:
        """Run the loaded CRF kernel to ``EXIT`` on each channel.

        ``walk`` is the column-access schedule: one ``(row, col)``
        sequence shared by every channel, or a per-channel mapping.
        Channels advance round-robin, one dynamic instruction each, so
        their all-bank request streams interleave and the memory system
        serves them concurrently.  Returns the total number of dynamic
        instructions executed (all channels).

        When every target channel holds the same CRF program and walks
        the same column schedule (the lockstep case every built-in
        looped kernel hits), the vectorized machine drives *one*
        sequencer and executes each dynamic instruction across all
        target channels in a single array op — the round-robin request
        interleaving and all sequencer counters are reproduced exactly.
        """
        targets = self._channels(channels)
        if (
            self._vector is not None
            and self._objects is None
            and len(targets) > 1
            and len(set(targets)) == len(targets)
            and not isinstance(walk, _t.Mapping)
            and self._lockstep_programs(targets)
        ):
            return self._run_kernel_lockstep(walk, targets)
        if isinstance(walk, _t.Mapping):
            walks = {ch: walk[ch] for ch in targets}
        else:
            walks = {ch: walk for ch in targets}
        steppers = {
            ch: self.sequencers[ch].run(walks[ch]) for ch in targets
        }
        executed = 0
        active = list(targets)
        while active:
            still_running = []
            for channel in active:
                step = next(steppers[channel], None)
                if step is None:
                    continue
                command, row, col = step
                self._step(channel, command, row, col)
                executed += 1
                still_running.append(channel)
            active = still_running
        return executed

    def _lockstep_programs(self, targets: _t.Sequence[int]) -> bool:
        """Do all target channels hold the same loaded CRF program?"""
        first = self.sequencers[targets[0]].crf
        if not first:
            return False
        return all(
            self.sequencers[ch].crf == first for ch in targets[1:]
        )

    def _run_kernel_lockstep(
        self,
        walk: _t.Sequence[_t.Tuple[int, int]],
        targets: _t.List[int],
    ) -> int:
        """Drive one sequencer; execute each step across all targets.

        Every channel would yield the identical dynamic-instruction
        sequence (same CRF, same walk), so one generator stands in for
        all of them: each step executes as a single vectorized op over
        the target channels and appends the same round-robin request
        pattern (channel-major within each step) the generic loop
        produces.  Sequencer counters of the non-driven channels are
        mirrored from the driver's, even on error.
        """
        assert self._vector is not None
        driver = self.sequencers[targets[0]]
        others = [self.sequencers[ch] for ch in targets[1:]]
        whole = len(targets) == self.n_channels
        vector = self._vector
        sels: _t.Tuple[_t.Tuple[int, ...], ...] = (
            ((),) if whole else tuple((ch,) for ch in targets)
        )
        compiled: _t.Dict[int, _t.Tuple[_t.Callable, ...]] = {}
        rows_l: _t.List[int] = []
        cols_l: _t.List[int] = []
        n_targets = len(targets)
        executed = 0
        before_instr = driver.instructions
        before_ctl = driver.control_steps
        try:
            # one errstate block for the whole kernel — per-op IEEE
            # behavior (inf saturation, NaN propagation) is numpy's
            # regardless; execute() merely silences the same warnings
            # per instruction
            with np.errstate(over="ignore", invalid="ignore"):
                for command, row, col in driver.run(walk):
                    steps = compiled.get(id(command))
                    if steps is None:
                        steps = tuple(
                            vector.compile_step(command, sel)
                            for sel in sels
                        )
                        compiled[id(command)] = steps
                    for step in steps:
                        step(row, col)
                    rows_l.append(row)
                    cols_l.append(col)
                    executed += n_targets
        finally:
            if rows_l:
                # commands_executed, batched: every selected unit ran
                # every dynamic instruction
                n_steps = len(rows_l)
                if whole:
                    vector.commands_executed += n_steps
                else:
                    for ch in targets:
                        vector.commands_executed[ch] += n_steps
                self._push_block(targets, rows_l, cols_l)
            delta_instr = driver.instructions - before_instr
            delta_ctl = driver.control_steps - before_ctl
            for sequencer in others:
                sequencer.instructions += delta_instr
                sequencer.control_steps += delta_ctl
        return executed

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def _pack_columns(
        self,
    ) -> _t.Tuple[
        np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray
    ]:
        """The packed log as (op, channel, bank, row, col) arrays.

        Lockstep blocks expand vectorized: each recorded step fans out
        to one PIM request per target channel, channel-major within
        the step — exactly the round-robin order the generic execution
        loop appends.
        """
        parts: _t.Tuple[list, list, list, list, list] = (
            [], [], [], [], [],
        )
        pim_code = Op.PIM.code
        for chunk in self._iter_chunks():
            if chunk[0] == "flat":
                _, ops_l, ch_l, bank_l, row_l, col_l = chunk
                parts[0].append(np.array(ops_l, dtype=np.uint8))
                parts[1].append(np.array(ch_l, dtype=np.int64))
                parts[2].append(np.array(bank_l, dtype=np.int64))
                parts[3].append(np.array(row_l, dtype=np.int64))
                parts[4].append(np.array(col_l, dtype=np.int64))
            else:
                _, targets, rows_l, cols_l = chunk
                n_steps = len(rows_l)
                n_t = len(targets)
                parts[0].append(
                    np.full(n_steps * n_t, pim_code, dtype=np.uint8)
                )
                parts[1].append(
                    np.tile(np.array(targets, dtype=np.int64), n_steps)
                )
                parts[2].append(
                    np.zeros(n_steps * n_t, dtype=np.int64)
                )
                parts[3].append(
                    np.repeat(np.array(rows_l, dtype=np.int64), n_t)
                )
                parts[4].append(
                    np.repeat(np.array(cols_l, dtype=np.int64), n_t)
                )
        if not parts[0]:
            return (
                np.empty(0, dtype=np.uint8),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        return (
            np.concatenate(parts[0]),
            np.concatenate(parts[1]),
            np.concatenate(parts[2]),
            np.concatenate(parts[3]),
            np.concatenate(parts[4]),
        )

    def reset_requests(self) -> None:
        """Drop the accumulated request stream (e.g. after data load)."""
        self._chunks = []
        self._log = _empty_log()
        self._count = 0
        self._objects = None

    def replay(
        self,
        engine: str = "auto",
        telemetry: _t.Optional["_te.ReplayTelemetry"] = None,
    ) -> PimExecResult:
        """Replay the accumulated stream through a fresh MemorySystem.

        ``telemetry`` is threaded through to
        :meth:`~repro.memsys.MemorySystem.replay`, so per-request
        latency recording and phase profiling cover the AB-barrier
        stream exactly as they cover plain traces.

        While the machine is still in packed-log mode the stream goes
        out as a :class:`~repro.memsys.PackedTrace` (addresses encoded
        in one vectorized pass, no request objects); once
        :attr:`requests` has been materialized, the object stream is
        copied and replayed exactly as before.  Both forms replay
        bit-identically.
        """
        if self.n_requests == 0:
            raise PimExecError("no requests accumulated to replay")
        trace: _t.Union[PackedTrace, _t.List[MemRequest]]
        if self._objects is None:
            op_codes, channels, banks, rows, cols = self._pack_columns()
            per_group = self.config.banks_per_group
            addrs = self.addr_map.encode_fields(
                {
                    "channel": channels,
                    "bankgroup": banks // per_group,
                    "bank": banks % per_group,
                    "row": rows,
                    "column": cols,
                }
            )
            trace = PackedTrace(op_codes, addrs)
            counts = np.bincount(op_codes, minlength=len(OPS_BY_CODE))
            n_pim = int(counts[Op.PIM.code])
            n_broadcast = int(counts[Op.AB.code])
            n_host = int(counts[Op.READ.code] + counts[Op.WRITE.code])
            n_total = len(trace)
        else:
            trace = [
                MemRequest(r.op, r.addr, r.timestamp)
                for r in self._objects
            ]
            ops = [r.op for r in trace]
            n_pim = sum(op is Op.PIM for op in ops)
            n_broadcast = sum(op is Op.AB for op in ops)
            n_host = sum(op in (Op.READ, Op.WRITE) for op in ops)
            n_total = len(trace)
        system = MemorySystem(self.config)
        stats = system.replay(trace, engine=engine, telemetry=telemetry)
        return PimExecResult(
            stats=stats,
            engine=system.last_replay_engine,
            n_requests=n_total,
            n_pim=n_pim,
            n_broadcast=n_broadcast,
            n_host=n_host,
        )

    def sequencer_stats(self) -> _t.List[_t.Dict[str, int]]:
        """Per-channel sequencer counters (see
        :meth:`CommandSequencer.stats`), in channel order."""
        return [sequencer.stats() for sequencer in self.sequencers]

    def __repr__(self) -> str:
        mode = "bank-group" if self.bank_groups else "per-bank"
        return (
            f"<PimExecMachine {self.n_channels}ch x "
            f"{self.units_per_channel}units ({mode}, {self.dtype}, "
            f"{self.unit_mode}) "
            f"lanes={self.lanes} requests={self.n_requests}>"
        )
