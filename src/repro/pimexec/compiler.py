"""Compiler bridge: lowering :mod:`repro.isa` vector kernels onto PIM.

The functional ISA simulator runs PIM-Lite-style *programs*; this
module closes the loop the ROADMAP asks for — "ISA programs from
``repro.isa`` can compile onto the memory system" — by lowering the
reduction-loop vector kernels
(:func:`repro.isa.programs.vector_sum_program` /
:func:`~repro.isa.programs.simd_vector_sum_program`) onto
:mod:`repro.pimexec` microkernels:

1. the kernel's assembled instruction stream is checked against the
   supported idiom (a ``ld``/``vld`` + ``add``/``vadd`` reduction loop
   closed by ``bne``, storing one result word);
2. its :attr:`~repro.isa.programs.KernelBinary.setup` function runs
   against a capture shim, recovering the exact input vector the
   kernel would deposit into :class:`~repro.isa.multinode.PimSystem`
   global memory;
3. the captured values become a :func:`~repro.pimexec.kernels.
   vector_sum_kernel` data layout, executed by the per-bank units.

The lowered kernel must reproduce the ISA kernel's expected result
exactly (the inputs are small integers, so float64 accumulation is
exact) — the "banks actually compute the numbers" check.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ..isa.programs import KernelBinary
from ..memsys import MemSysConfig
from .commands import PimExecError
from .kernels import PimKernel, vector_sum_kernel
from .machine import PimExecMachine, PimExecResult

__all__ = ["CompileError", "LoweredKernel", "lower_kernel_binary"]


class CompileError(PimExecError):
    """The ISA kernel does not match a lowerable idiom."""


#: (load mnemonics, accumulate mnemonics) of the reduction idiom.
_LOADS = {"ld", "vld"}
_ACCUMULATES = {"add", "vadd"}


class _CaptureSystem:
    """Duck-typed :class:`PimSystem` shim that records memory writes."""

    def __init__(self) -> None:
        self.blocks: _t.List[_t.Tuple[int, _t.List[int]]] = []
        self.words: _t.Dict[int, int] = {}

    def write_block(
        self, base: int, values: _t.Sequence[int]
    ) -> None:
        self.blocks.append((int(base), [int(v) for v in values]))

    def write_word(self, addr: int, value: int) -> None:
        self.words[int(addr)] = int(value)


@dataclasses.dataclass
class LoweredKernel:
    """An ISA kernel lowered onto the PIM execution units."""

    source_name: str
    values: np.ndarray
    expected_sum: int
    kernel: PimKernel

    def run(
        self, engine: str = "auto"
    ) -> _t.Tuple[float, bool, PimExecResult]:
        """Execute on a fresh machine.

        Returns ``(result, exact, timing)``: the computed sum, whether
        every bank's register state matched the NumPy reference
        bit-exactly *and* the sum equals the ISA kernel's expected
        result, and the replay timing.
        """
        machine = PimExecMachine(self.kernel.config)
        self.kernel.setup(machine)
        machine.reset_requests()
        self.kernel.execute(machine)
        timing = machine.replay(engine=engine)
        result = self.kernel.result(machine)
        exact = (
            self.kernel.check(machine)
            and result == float(self.expected_sum)
        )
        return result, exact, timing


def _loop_mnemonics(binary: KernelBinary) -> _t.Set[str]:
    return {inst.op for inst in binary.program.instructions}


def lower_kernel_binary(
    binary: KernelBinary, config: _t.Optional[MemSysConfig] = None
) -> LoweredKernel:
    """Lower a reduction-loop ISA kernel onto the per-bank units.

    Parameters
    ----------
    binary:
        A :class:`~repro.isa.programs.KernelBinary` whose program is a
        sum-reduction loop (``vector_sum`` / ``simd_vector_sum``).
    config:
        Target memory-system geometry (paper defaults if omitted).

    Raises
    ------
    CompileError
        If the program is not a recognizable reduction loop, or its
        setup does not stage exactly one input block.
    """
    mnemonics = _loop_mnemonics(binary)
    if not (_LOADS & mnemonics):
        raise CompileError(
            f"{binary.name}: no ld/vld — nothing streams from memory"
        )
    if not (_ACCUMULATES & mnemonics):
        raise CompileError(
            f"{binary.name}: no add/vadd accumulation to lower to the "
            "bank ADD units"
        )
    if "bne" not in mnemonics:
        raise CompileError(
            f"{binary.name}: no bne reduction loop to unroll into a "
            "CRF JUMP"
        )
    if "sum" not in binary.expected:
        raise CompileError(
            f"{binary.name}: kernel does not produce a scalar sum"
        )
    if "amo" in mnemonics or "invoke" in mnemonics:
        raise CompileError(
            f"{binary.name}: parcel/atomic kernels need host "
            "orchestration the all-bank lockstep model cannot express"
        )
    capture = _CaptureSystem()
    binary.setup(capture)  # type: ignore[arg-type]
    if len(capture.blocks) != 1:
        raise CompileError(
            f"{binary.name}: expected exactly one staged input block, "
            f"setup wrote {len(capture.blocks)}"
        )
    _base, values = capture.blocks[0]
    vector = np.asarray(values, dtype=np.float64)
    kernel = vector_sum_kernel(config=config, values=vector)
    return LoweredKernel(
        source_name=binary.name,
        values=vector,
        expected_sum=int(binary.expected["sum"]),
        kernel=kernel,
    )
