"""Command sequencer: the CRF and its lockstep dynamic execution.

HBM-PIM kernels execute in *all-bank* mode: the host writes a
microkernel into the Command Register File (broadcast to every bank of
a channel), then issues a stream of column accesses; each access makes
every bank execute one CRF slot in lockstep, with ``JUMP`` looping the
program counter and ``EXIT`` ending the kernel.  The address of the
triggering access supplies the ``BANK`` operand's row/column — so the
host-side "column walk" is simultaneously the kernel's data schedule
and its memory-request stream.

The sequencer is mode-agnostic: whether the machine runs one execution
unit per bank or half-bank lockstep groups (``bank_groups=True``, one
unit per even/odd bank pair), every dynamic instruction is still one
all-bank column access — group mode simply needs more of them for the
same data, which is exactly how the timing difference between the two
modes surfaces in the replayed request stream.

:class:`CommandSequencer` reproduces exactly that: :meth:`run` takes a
column walk (an iterable of ``(row, col)``) and yields one
``(command, row, col)`` step per dynamic non-control instruction.
Instructions that touch ``BANK`` implicitly consume the next walk
entry; register-only instructions repeat the previous address (a
row-buffer hit — the column access still occupies the channel, which
is how kernel cycles pay real command-bus time).  ``JUMP``/``EXIT``
are sequencer-internal and consume no access.
"""

from __future__ import annotations

import typing as _t

from .commands import CRF_SIZE, PimCommand, PimExecError, PimOpcode

__all__ = ["CommandSequencer"]


class CommandSequencer:
    """CRF storage plus the dynamic instruction stream it generates.

    Parameters
    ----------
    crf_size:
        CRF capacity in command slots (HBM-PIM: 32).
    max_steps:
        Safety bound on dynamic non-control instructions per kernel
        (guards against missing ``EXIT`` / runaway ``JUMP`` loops).
    """

    def __init__(
        self, crf_size: int = CRF_SIZE, max_steps: int = 10_000_000
    ) -> None:
        if crf_size < 1:
            raise ValueError("crf_size must be >= 1")
        self.crf_size = crf_size
        self.max_steps = max_steps
        self.crf: _t.List[PimCommand] = []
        #: Cumulative telemetry counters (see :meth:`stats`).
        self.kernels_loaded = 0
        self.instructions = 0
        self.control_steps = 0

    # ------------------------------------------------------------------
    def load(self, commands: _t.Iterable[PimCommand]) -> None:
        """Load a microkernel into the CRF.

        Raises
        ------
        PimExecError
            If the kernel exceeds the CRF capacity, contains no
            ``EXIT``, or a ``JUMP`` targets a slot outside the kernel.
        """
        program = list(commands)
        if len(program) > self.crf_size:
            raise PimExecError(
                f"kernel has {len(program)} commands; CRF holds "
                f"{self.crf_size}"
            )
        if not any(c.opcode is PimOpcode.EXIT for c in program):
            raise PimExecError("kernel must contain an EXIT command")
        for slot, command in enumerate(program):
            if (
                command.opcode is PimOpcode.JUMP
                and command.target >= len(program)
            ):
                raise PimExecError(
                    f"CRF slot {slot}: JUMP target {command.target} "
                    f"outside the {len(program)}-command kernel"
                )
        self.crf = program
        self.kernels_loaded += 1

    # ------------------------------------------------------------------
    def run(
        self, walk: _t.Iterable[_t.Tuple[int, int]]
    ) -> _t.Iterator[_t.Tuple[PimCommand, int, int]]:
        """Yield ``(command, row, col)`` per dynamic instruction.

        ``walk`` supplies the column-access addresses consumed by
        commands with implicit ``BANK`` operands; other commands repeat
        the previous address (initially row 0, column 0).

        Raises
        ------
        PimExecError
            If no kernel is loaded, the PC runs off the CRF end, the
            walk is exhausted while a ``BANK`` command still needs an
            address, or ``max_steps`` is exceeded.
        """
        if not self.crf:
            raise PimExecError("no kernel loaded in the CRF")
        walk_iter = iter(walk)
        row, col = 0, 0
        pc = 0
        steps = 0
        remaining: _t.Dict[int, int] = {}  # active JUMP slot -> left
        while True:
            if pc >= len(self.crf):
                raise PimExecError(
                    "program counter ran off the CRF end without EXIT"
                )
            command = self.crf[pc]
            if command.opcode is PimOpcode.EXIT:
                self.control_steps += 1
                return
            if command.opcode is PimOpcode.JUMP:
                self.control_steps += 1
                left = remaining.get(pc, command.count)
                if left > 0:
                    remaining[pc] = left - 1
                    pc = command.target
                else:
                    remaining[pc] = command.count  # re-arm for re-entry
                    pc += 1
                continue
            steps += 1
            if steps > self.max_steps:
                raise PimExecError(
                    f"kernel exceeded max_steps={self.max_steps} "
                    "dynamic instructions (missing EXIT?)"
                )
            if command.uses_implicit_bank:
                try:
                    row, col = next(walk_iter)
                except StopIteration:
                    raise PimExecError(
                        f"column walk exhausted at dynamic step {steps} "
                        f"({command})"
                    ) from None
            self.instructions += 1
            yield command, row, col
            pc += 1

    def stats(self) -> _t.Dict[str, int]:
        """Cumulative dynamic-execution counters for telemetry.

        ``instructions`` counts dynamic non-control instructions
        yielded (each one an all-bank column access in the replayed
        stream), ``control_steps`` the sequencer-internal ``JUMP`` /
        ``EXIT`` evaluations that consume no access, and
        ``kernels_loaded`` successful CRF downloads.
        """
        return {
            "kernels_loaded": self.kernels_loaded,
            "instructions": self.instructions,
            "control_steps": self.control_steps,
        }

    def __repr__(self) -> str:
        return (
            f"<CommandSequencer crf={len(self.crf)}/{self.crf_size}>"
        )
