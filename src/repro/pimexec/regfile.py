"""Per-bank PIM execution unit: register files + bank data array.

Each :class:`BankExecUnit` is the compute logic HBM-PIM places beside
one DRAM bank (or, in bank-group mode, beside one even/odd *pair* of
banks): two vector register files (GRF_A/GRF_B, 8 registers of one page
each), a scalar register file (SRF, 8 entries, broadcast over lanes
when read), and functional access to the attached bank data array(s).
A page is ``lanes`` values — the 256-bit row-buffer page of the §2.1
macro carries 16 16-bit words in hardware.

Arithmetic dtype
----------------
The unit computes in one of two selectable dtypes (:data:`DTYPES`):

* ``"fp64"`` (default) — the idealized model of PRs 1-4: values are
  ``float64``, so results compare bit-exactly against a float64 NumPy
  reference performing the same operations in the same order;
* ``"fp16"`` — *hardware-faithful* IEEE binary16: every register,
  bank page, and intermediate is NumPy ``float16``, so each ADD/MUL/
  MAC/MAD step rounds to nearest-even at 11 significand bits exactly
  like HBM-PIM's 16-bit FPUs.  Overflow saturates to ``inf``,
  subnormals underflow gradually (no flush-to-zero), and NaNs
  propagate — the semantics ``docs/nn.md`` documents and
  ``tests/nn/test_fp16.py`` pins.

Both dtypes keep the bit-exactness contract: a NumPy reference using
the same dtype and the same operation order reproduces the unit's
state bit for bit.

Bank ports
----------
In HBM-PIM's bank-group (half-bank) mode one execution unit is shared
by an even/odd pair of banks; the ``BANK,u`` operand selector picks
which of the pair a command touches.  ``ports=2`` models that sharing:
the data array is keyed by ``(port, row, col)`` and ``Operand.unit``
selects the port.  With the default ``ports=1`` (one unit per bank)
the selector is recorded but ignored, as in PR 3.

The unit is purely *functional*: it executes commands and mutates
state, but knows nothing about time.  Timing comes from the
:class:`~repro.pimexec.machine.PimExecMachine`, which emits one
:class:`~repro.memsys.request.MemRequest` per executed command through
the banked memory system.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from .commands import (
    BANK,
    GRF_A,
    GRF_B,
    GRF_REGS,
    Operand,
    PimCommand,
    PimExecError,
    PimOpcode,
    SRF,
    SRF_REGS,
)

__all__ = ["DTYPES", "BankExecUnit", "VectorUnitArray", "UnitView"]

#: Selectable arithmetic dtypes: name -> NumPy dtype.
DTYPES: _t.Dict[str, np.dtype] = {
    "fp64": np.dtype(np.float64),
    "fp16": np.dtype(np.float16),
}


class BankExecUnit:
    """Execution unit and functional data store of one or two banks.

    Parameters
    ----------
    lanes:
        Values per page (page width over the 16-bit hardware word).
    name:
        Label for error messages and repr.
    dtype:
        Arithmetic dtype name (see :data:`DTYPES`): ``"fp64"``
        (default) or ``"fp16"`` for IEEE binary16 rounding per
        operation.
    ports:
        Attached bank data arrays: 1 (per-bank unit, default) or 2
        (bank-group mode — the unit is shared by an even/odd bank pair
        and ``Operand.unit`` selects the port).
    """

    __slots__ = (
        "lanes", "name", "dtype", "np_dtype", "ports",
        "grf_a", "grf_b", "srf", "memory", "commands_executed",
    )

    def __init__(
        self,
        lanes: int,
        name: str = "unit",
        dtype: str = "fp64",
        ports: int = 1,
    ) -> None:
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        if dtype not in DTYPES:
            raise PimExecError(
                f"unknown dtype {dtype!r}; available: "
                f"{tuple(DTYPES)}"
            )
        if ports not in (1, 2):
            raise ValueError(f"ports must be 1 or 2, got {ports}")
        self.lanes = int(lanes)
        self.name = name
        self.dtype = dtype
        self.np_dtype = DTYPES[dtype]
        self.ports = int(ports)
        self.grf_a = np.zeros((GRF_REGS, self.lanes), dtype=self.np_dtype)
        self.grf_b = np.zeros((GRF_REGS, self.lanes), dtype=self.np_dtype)
        self.srf = np.zeros(SRF_REGS, dtype=self.np_dtype)
        #: Functional bank contents: ``(port, row, col) -> page``
        #: (sparse; unwritten pages read as zeros).
        self.memory: _t.Dict[
            _t.Tuple[int, int, int], np.ndarray
        ] = {}
        self.commands_executed = 0

    # ------------------------------------------------------------------
    # bank data array
    # ------------------------------------------------------------------
    def _port(self, port: int) -> int:
        if not 0 <= port < self.ports:
            raise PimExecError(
                f"{self.name}: bank port {port} out of range "
                f"[0, {self.ports})"
            )
        return int(port)

    def load_page(self, row: int, col: int, port: int = 0) -> np.ndarray:
        """One page of a bank array (zeros if never written)."""
        page = self.memory.get((self._port(port), int(row), int(col)))
        if page is None:
            return np.zeros(self.lanes, dtype=self.np_dtype)
        return page.copy()

    def store_page(
        self,
        row: int,
        col: int,
        values: _t.Sequence[float],
        port: int = 0,
    ) -> None:
        """Store one page, rounding ``values`` to the unit's dtype."""
        page = np.asarray(values, dtype=self.np_dtype)
        if page.shape != (self.lanes,):
            raise PimExecError(
                f"{self.name}: page must have {self.lanes} lanes, got "
                f"shape {page.shape}"
            )
        self.memory[(self._port(port), int(row), int(col))] = page.copy()

    # ------------------------------------------------------------------
    # operand access
    # ------------------------------------------------------------------
    def _coords(
        self, operand: Operand, row: int, col: int
    ) -> _t.Tuple[int, int, int]:
        port = (
            operand.unit
            if operand.unit is not None and self.ports > 1
            else 0
        )
        if operand.row is not None:
            return operand.row, _t.cast(int, operand.col), port
        return row, col, port

    def read_operand(
        self, operand: Operand, row: int, col: int
    ) -> np.ndarray:
        if operand.space == BANK:
            r, c, port = self._coords(operand, row, col)
            return self.load_page(r, c, port)
        if operand.space == GRF_A:
            return self.grf_a[operand.index]
        if operand.space == GRF_B:
            return self.grf_b[operand.index]
        assert operand.space == SRF
        return np.full(
            self.lanes, self.srf[operand.index], dtype=self.np_dtype
        )

    def write_operand(
        self, operand: Operand, value: np.ndarray, row: int, col: int
    ) -> None:
        if operand.space == BANK:
            r, c, port = self._coords(operand, row, col)
            self.store_page(r, c, value, port)
        elif operand.space == GRF_A:
            self.grf_a[operand.index] = value
        elif operand.space == GRF_B:
            self.grf_b[operand.index] = value
        else:  # pragma: no cover - guarded by PimCommand validation
            raise PimExecError("SRF cannot be a command destination")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    _MAD_DEFAULT_ADDEND = Operand(SRF, 1)  # HBM-PIM's SRF_M

    def execute(self, command: PimCommand, row: int = 0, col: int = 0) -> None:
        """Execute one non-control command at column access (row, col).

        Every arithmetic step evaluates in the unit's dtype: with
        ``"fp16"``, each product and each sum rounds to binary16
        (``MAC``/``MAD`` round the product first, then the addition —
        no fused multiply-add), matching a NumPy float16 reference
        performing the same expressions.
        """
        opcode = command.opcode
        if command.is_control:
            raise PimExecError(
                f"{opcode.value} is sequencer control, not a bank "
                "operation"
            )
        self.commands_executed += 1
        if opcode is PimOpcode.NOP:
            return
        dst = _t.cast(Operand, command.dst)
        src0 = self.read_operand(_t.cast(Operand, command.src0), row, col)
        if opcode in (PimOpcode.MOV, PimOpcode.FILL):
            self.write_operand(dst, src0.copy(), row, col)
            return
        src1 = self.read_operand(_t.cast(Operand, command.src1), row, col)
        # IEEE semantics by design: overflow saturates to inf and
        # 0 * inf produces NaN — silence numpy's advisory warnings
        with np.errstate(over="ignore", invalid="ignore"):
            if opcode is PimOpcode.ADD:
                result = src0 + src1
            elif opcode is PimOpcode.MUL:
                result = src0 * src1
            elif opcode is PimOpcode.MAC:
                result = self.read_operand(dst, row, col) + src0 * src1
            else:  # MAD
                addend = self.read_operand(
                    command.src2 or self._MAD_DEFAULT_ADDEND, row, col
                )
                result = src0 * src1 + addend
        self.write_operand(dst, result, row, col)

    def __repr__(self) -> str:
        return (
            f"<BankExecUnit {self.name!r} lanes={self.lanes} "
            f"dtype={self.dtype} ports={self.ports} "
            f"pages={len(self.memory)} "
            f"executed={self.commands_executed}>"
        )


#: Unit-selection tuple into a :class:`VectorUnitArray`: ``()`` (every
#: unit), ``(channel,)`` (every unit of one channel), or
#: ``(channel, unit)``.
UnitSel = _t.Tuple[int, ...]


class VectorUnitArray:
    """Every execution unit of one machine, as stacked NumPy arrays.

    The array-backed twin of a grid of :class:`BankExecUnit` instances:
    register files are ``(n_channels, units_per_channel, ...)`` arrays
    and the sparse bank store keys ``(port, row, col)`` to one
    ``(n_channels, units_per_channel, lanes)`` page plane, so one
    lockstep command executes across every unit of a channel (or the
    whole machine) in a handful of vectorized NumPy operations instead
    of a Python loop over units.

    Bit-exactness is preserved by construction: every arithmetic step
    is the *same* NumPy elementwise expression in the *same* dtype as
    :meth:`BankExecUnit.execute` — with ``"fp16"``, each product and
    each sum still rounds to binary16 per operation (``MAC``/``MAD``
    round the product first; no fused multiply-add), and IEEE
    semantics (inf saturation, NaN propagation, gradual underflow) are
    unchanged because NumPy applies them lane by lane regardless of
    array shape.

    Every method takes a selection tuple ``sel`` — ``()`` for all
    units, ``(channel,)`` for one channel's units in lockstep,
    ``(channel, unit)`` for a single unit (the granularity
    :class:`UnitView` adapts to the scalar-unit API).
    """

    __slots__ = (
        "n_channels", "units_per_channel", "lanes", "name",
        "dtype", "np_dtype", "ports",
        "grf_a", "grf_b", "srf", "memory", "commands_executed",
    )

    def __init__(
        self,
        n_channels: int,
        units_per_channel: int,
        lanes: int,
        dtype: str = "fp64",
        ports: int = 1,
    ) -> None:
        if n_channels < 1 or units_per_channel < 1:
            raise ValueError(
                f"need >= 1 channel and unit, got "
                f"{n_channels} x {units_per_channel}"
            )
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        if dtype not in DTYPES:
            raise PimExecError(
                f"unknown dtype {dtype!r}; available: "
                f"{tuple(DTYPES)}"
            )
        if ports not in (1, 2):
            raise ValueError(f"ports must be 1 or 2, got {ports}")
        self.n_channels = int(n_channels)
        self.units_per_channel = int(units_per_channel)
        self.lanes = int(lanes)
        self.name = "vector-units"
        self.dtype = dtype
        self.np_dtype = DTYPES[dtype]
        self.ports = int(ports)
        grid = (self.n_channels, self.units_per_channel)
        self.grf_a = np.zeros(
            grid + (GRF_REGS, self.lanes), dtype=self.np_dtype
        )
        self.grf_b = np.zeros(
            grid + (GRF_REGS, self.lanes), dtype=self.np_dtype
        )
        self.srf = np.zeros(grid + (SRF_REGS,), dtype=self.np_dtype)
        #: Functional bank contents: ``(port, row, col) -> page plane``
        #: of shape ``(n_channels, units_per_channel, lanes)`` (sparse;
        #: unwritten pages read as zeros).
        self.memory: _t.Dict[
            _t.Tuple[int, int, int], np.ndarray
        ] = {}
        self.commands_executed = np.zeros(grid, dtype=np.int64)

    # ------------------------------------------------------------------
    # bank data array
    # ------------------------------------------------------------------
    def _port(self, port: int) -> int:
        if not 0 <= port < self.ports:
            raise PimExecError(
                f"{self.name}: bank port {port} out of range "
                f"[0, {self.ports})"
            )
        return int(port)

    def _sel_shape(self, sel: UnitSel) -> _t.Tuple[int, ...]:
        return (self.n_channels, self.units_per_channel)[len(sel):]

    def load_pages(
        self, row: int, col: int, port: int = 0, sel: UnitSel = ()
    ) -> np.ndarray:
        """The selected units' view of one page (zeros if unwritten)."""
        page = self.memory.get((self._port(port), int(row), int(col)))
        if page is None:
            return np.zeros(
                self._sel_shape(sel) + (self.lanes,),
                dtype=self.np_dtype,
            )
        return page[sel].copy()

    def store_pages(
        self,
        row: int,
        col: int,
        values: np.ndarray,
        port: int = 0,
        sel: UnitSel = (),
    ) -> None:
        """Store the selected units' slice of one page plane."""
        key = (self._port(port), int(row), int(col))
        page = self.memory.get(key)
        if page is None:
            page = np.zeros(
                (self.n_channels, self.units_per_channel, self.lanes),
                dtype=self.np_dtype,
            )
            self.memory[key] = page
        page[sel] = values

    # ------------------------------------------------------------------
    # operand access
    # ------------------------------------------------------------------
    def _coords(
        self, operand: Operand, row: int, col: int
    ) -> _t.Tuple[int, int, int]:
        port = (
            operand.unit
            if operand.unit is not None and self.ports > 1
            else 0
        )
        if operand.row is not None:
            return operand.row, _t.cast(int, operand.col), port
        return row, col, port

    def _reg_index(
        self, index: int, sel: UnitSel
    ) -> _t.Tuple[_t.Any, ...]:
        return sel + (slice(None),) * (2 - len(sel)) + (index,)

    def read_operand(
        self, operand: Operand, row: int, col: int, sel: UnitSel = ()
    ) -> np.ndarray:
        if operand.space == BANK:
            r, c, port = self._coords(operand, row, col)
            return self.load_pages(r, c, port, sel)
        if operand.space == GRF_A:
            return self.grf_a[self._reg_index(operand.index, sel)]
        if operand.space == GRF_B:
            return self.grf_b[self._reg_index(operand.index, sel)]
        assert operand.space == SRF
        # one scalar per unit, broadcast over lanes (a trailing
        # length-1 axis broadcasts exactly like the scalar unit's
        # ``np.full(lanes, ...)`` page, element for element)
        return self.srf[self._reg_index(operand.index, sel)][..., None]

    def write_operand(
        self,
        operand: Operand,
        value: np.ndarray,
        row: int,
        col: int,
        sel: UnitSel = (),
    ) -> None:
        if operand.space == BANK:
            r, c, port = self._coords(operand, row, col)
            self.store_pages(r, c, value, port, sel)
        elif operand.space == GRF_A:
            self.grf_a[self._reg_index(operand.index, sel)] = value
        elif operand.space == GRF_B:
            self.grf_b[self._reg_index(operand.index, sel)] = value
        else:  # pragma: no cover - guarded by PimCommand validation
            raise PimExecError("SRF cannot be a command destination")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    _MAD_DEFAULT_ADDEND = BankExecUnit._MAD_DEFAULT_ADDEND

    def execute(
        self,
        command: PimCommand,
        row: int = 0,
        col: int = 0,
        sel: UnitSel = (),
    ) -> None:
        """Execute one non-control command across the selected units.

        Semantically identical to running
        :meth:`BankExecUnit.execute` on every selected unit — same
        expressions, same dtype, same rounding — in one vectorized op.
        """
        opcode = command.opcode
        if command.is_control:
            raise PimExecError(
                f"{opcode.value} is sequencer control, not a bank "
                "operation"
            )
        self.commands_executed[sel] += 1
        if opcode is PimOpcode.NOP:
            return
        dst = _t.cast(Operand, command.dst)
        src0 = self.read_operand(
            _t.cast(Operand, command.src0), row, col, sel
        )
        if opcode in (PimOpcode.MOV, PimOpcode.FILL):
            self.write_operand(dst, src0.copy(), row, col, sel)
            return
        src1 = self.read_operand(
            _t.cast(Operand, command.src1), row, col, sel
        )
        with np.errstate(over="ignore", invalid="ignore"):
            if opcode is PimOpcode.ADD:
                result = src0 + src1
            elif opcode is PimOpcode.MUL:
                result = src0 * src1
            elif opcode is PimOpcode.MAC:
                result = (
                    self.read_operand(dst, row, col, sel) + src0 * src1
                )
            else:  # MAD
                addend = self.read_operand(
                    command.src2 or self._MAD_DEFAULT_ADDEND,
                    row,
                    col,
                    sel,
                )
                result = src0 * src1 + addend
        self.write_operand(dst, result, row, col, sel)

    # ------------------------------------------------------------------
    # compiled steps (the lockstep hot path)
    # ------------------------------------------------------------------
    def _compile_reader(
        self, operand: Operand, sel: UnitSel
    ) -> _t.Callable[[int, int], np.ndarray]:
        """A ``(row, col) -> value`` closure for one source operand.

        Operand dispatch, port resolution, and index tuples are
        resolved once here instead of on every dynamic instruction.
        Bank reads return *views* (plus a shared read-only zero page
        for unwritten pages) — safe because every opcode computes its
        result into a fresh temporary before any write.
        """
        space = operand.space
        if space == BANK:
            port = self._port(
                operand.unit
                if operand.unit is not None and self.ports > 1
                else 0
            )
            memory = self.memory
            zeros = np.zeros(
                self._sel_shape(sel) + (self.lanes,), dtype=self.np_dtype
            )
            zeros.setflags(write=False)
            if operand.row is not None:
                key = (port, int(operand.row), int(_t.cast(int, operand.col)))

                def read(row: int, col: int) -> np.ndarray:
                    page = memory.get(key)
                    return zeros if page is None else page[sel]

            else:

                def read(row: int, col: int) -> np.ndarray:
                    page = memory.get((port, row, col))
                    return zeros if page is None else page[sel]

            return read
        if space == SRF:
            srf = self.srf
            index = self._reg_index(operand.index, sel)
            return lambda row, col: srf[index][..., None]
        arr = self.grf_a if space == GRF_A else self.grf_b
        index = self._reg_index(operand.index, sel)
        return lambda row, col: arr[index]

    def _compile_writer(
        self, operand: Operand, sel: UnitSel
    ) -> _t.Callable[[np.ndarray, int, int], None]:
        """A ``(value, row, col) -> None`` closure for the destination."""
        space = operand.space
        if space == BANK:
            port = self._port(
                operand.unit
                if operand.unit is not None and self.ports > 1
                else 0
            )
            memory = self.memory
            grid = (
                self.n_channels, self.units_per_channel, self.lanes,
            )
            np_dtype = self.np_dtype
            fixed = (
                (port, int(operand.row), int(_t.cast(int, operand.col)))
                if operand.row is not None
                else None
            )

            def write(value: np.ndarray, row: int, col: int) -> None:
                key = fixed if fixed is not None else (port, row, col)
                page = memory.get(key)
                if page is None:
                    page = np.zeros(grid, dtype=np_dtype)
                    memory[key] = page
                page[sel] = value

            return write
        if space == GRF_A:
            arr = self.grf_a
        elif space == GRF_B:
            arr = self.grf_b
        else:  # pragma: no cover - guarded by PimCommand validation
            raise PimExecError("SRF cannot be a command destination")
        index = self._reg_index(operand.index, sel)

        def write_reg(value: np.ndarray, row: int, col: int) -> None:
            arr[index] = value

        return write_reg

    def compile_step(
        self, command: PimCommand, sel: UnitSel = ()
    ) -> _t.Callable[[int, int], None]:
        """A ``(row, col)`` closure executing ``command`` over ``sel``.

        Semantically :meth:`execute` minus the per-call overheads the
        lockstep driver hoists: operand dispatch happens once at
        compile time, the caller provides one surrounding
        ``np.errstate`` block, and ``commands_executed`` is batched by
        the caller (one array add for the whole kernel).  The
        arithmetic expressions — and therefore dtype, rounding order,
        and IEEE special-case behavior — are identical.
        """
        opcode = command.opcode
        if command.is_control:
            raise PimExecError(
                f"{opcode.value} is sequencer control, not a bank "
                "operation"
            )
        if opcode is PimOpcode.NOP:
            return lambda row, col: None
        dst = _t.cast(Operand, command.dst)
        read0 = self._compile_reader(
            _t.cast(Operand, command.src0), sel
        )
        # a GRF destination is one fixed array view, so the ufunc can
        # write straight into it (``out=``) — the same elementwise loop
        # as ``dst[...] = a + b``, minus one temporary per step; bank
        # destinations keep the page-allocating writer
        out: _t.Optional[np.ndarray] = None
        if dst.space in (GRF_A, GRF_B):
            arr = self.grf_a if dst.space == GRF_A else self.grf_b
            out = arr[self._reg_index(dst.index, sel)]
        write = None if out is not None else self._compile_writer(dst, sel)
        if opcode in (PimOpcode.MOV, PimOpcode.FILL):
            if out is not None:
                return lambda row, col: np.copyto(out, read0(row, col))
            return lambda row, col: write(read0(row, col), row, col)
        read1 = self._compile_reader(
            _t.cast(Operand, command.src1), sel
        )
        if opcode is PimOpcode.ADD:
            if out is not None:
                return lambda row, col: np.add(
                    read0(row, col), read1(row, col), out=out
                )
            return lambda row, col: write(
                read0(row, col) + read1(row, col), row, col
            )
        if opcode is PimOpcode.MUL:
            if out is not None:
                return lambda row, col: np.multiply(
                    read0(row, col), read1(row, col), out=out
                )
            return lambda row, col: write(
                read0(row, col) * read1(row, col), row, col
            )
        if opcode is PimOpcode.MAC:
            read_dst = self._compile_reader(dst, sel)
            if out is not None:
                return lambda row, col: np.add(
                    read_dst(row, col),
                    read0(row, col) * read1(row, col),
                    out=out,
                )
            return lambda row, col: write(
                read_dst(row, col) + read0(row, col) * read1(row, col),
                row,
                col,
            )
        # MAD
        read2 = self._compile_reader(
            command.src2 or self._MAD_DEFAULT_ADDEND, sel
        )
        if out is not None:
            return lambda row, col: np.add(
                read0(row, col) * read1(row, col),
                read2(row, col),
                out=out,
            )
        return lambda row, col: write(
            read0(row, col) * read1(row, col) + read2(row, col),
            row,
            col,
        )

    def __repr__(self) -> str:
        return (
            f"<VectorUnitArray {self.n_channels}x"
            f"{self.units_per_channel} lanes={self.lanes} "
            f"dtype={self.dtype} ports={self.ports} "
            f"pages={len(self.memory)}>"
        )


class UnitView:
    """One ``(channel, unit)`` window onto a :class:`VectorUnitArray`.

    Presents the :class:`BankExecUnit` surface — ``grf_a``/``grf_b``/
    ``srf`` as mutable array views, ``load_page``/``store_page``,
    ``read_operand``/``write_operand``/``execute``,
    ``commands_executed`` — so kernels, programs, and tests written
    against scalar units run unchanged on the vectorized machine.
    """

    __slots__ = ("_array", "_channel", "_index", "name")

    def __init__(
        self,
        array: VectorUnitArray,
        channel: int,
        index: int,
        name: _t.Optional[str] = None,
    ) -> None:
        self._array = array
        self._channel = int(channel)
        self._index = int(index)
        self.name = name or f"ch{channel}.u{index}"

    # -- geometry / dtype passthrough ----------------------------------
    @property
    def lanes(self) -> int:
        return self._array.lanes

    @property
    def dtype(self) -> str:
        return self._array.dtype

    @property
    def np_dtype(self) -> np.dtype:
        return self._array.np_dtype

    @property
    def ports(self) -> int:
        return self._array.ports

    # -- register files (mutable views) --------------------------------
    @property
    def grf_a(self) -> np.ndarray:
        return self._array.grf_a[self._channel, self._index]

    @property
    def grf_b(self) -> np.ndarray:
        return self._array.grf_b[self._channel, self._index]

    @property
    def srf(self) -> np.ndarray:
        return self._array.srf[self._channel, self._index]

    @property
    def commands_executed(self) -> int:
        return int(
            self._array.commands_executed[self._channel, self._index]
        )

    @property
    def _sel(self) -> UnitSel:
        return (self._channel, self._index)

    @property
    def memory(self) -> _t.Dict[_t.Tuple[int, int, int], np.ndarray]:
        """This unit's page contents (copies), keyed ``(port, row, col)``.

        Read-only mirror of :attr:`BankExecUnit.memory`: the vectorized
        array stores whole-grid page planes, so a key appears here once
        *any* unit wrote it (this unit's slice reads zeros until its own
        write, exactly like :meth:`load_page`).  Mutation goes through
        :meth:`store_page`.
        """
        sel = self._sel
        return {
            key: plane[sel].copy()
            for key, plane in self._array.memory.items()
        }

    # -- bank data array -----------------------------------------------
    def load_page(self, row: int, col: int, port: int = 0) -> np.ndarray:
        """One page of the unit's bank array (zeros if never written)."""
        if not 0 <= port < self.ports:
            raise PimExecError(
                f"{self.name}: bank port {port} out of range "
                f"[0, {self.ports})"
            )
        return self._array.load_pages(row, col, port, self._sel)

    def store_page(
        self,
        row: int,
        col: int,
        values: _t.Sequence[float],
        port: int = 0,
    ) -> None:
        """Store one page, rounding ``values`` to the unit's dtype."""
        if not 0 <= port < self.ports:
            raise PimExecError(
                f"{self.name}: bank port {port} out of range "
                f"[0, {self.ports})"
            )
        page = np.asarray(values, dtype=self.np_dtype)
        if page.shape != (self.lanes,):
            raise PimExecError(
                f"{self.name}: page must have {self.lanes} lanes, got "
                f"shape {page.shape}"
            )
        self._array.store_pages(row, col, page, port, self._sel)

    # -- operand access / execution ------------------------------------
    def read_operand(
        self, operand: Operand, row: int, col: int
    ) -> np.ndarray:
        value = self._array.read_operand(operand, row, col, self._sel)
        if value.shape != (self.lanes,):  # SRF scalar: fill the lanes
            value = np.broadcast_to(value, (self.lanes,)).copy()
        return value

    def write_operand(
        self, operand: Operand, value: np.ndarray, row: int, col: int
    ) -> None:
        self._array.write_operand(operand, value, row, col, self._sel)

    def execute(
        self, command: PimCommand, row: int = 0, col: int = 0
    ) -> None:
        self._array.execute(command, row, col, self._sel)

    def __repr__(self) -> str:
        return (
            f"<UnitView {self.name!r} lanes={self.lanes} "
            f"dtype={self.dtype} ports={self.ports} "
            f"executed={self.commands_executed}>"
        )
