"""Per-bank PIM execution unit: register files + bank data array.

Each :class:`BankExecUnit` is the compute logic HBM-PIM places beside
one DRAM bank: two vector register files (GRF_A/GRF_B, 8 registers of
one page each), a scalar register file (SRF, 8 entries, broadcast over
lanes when read), and functional access to the bank's own data array.
A page is ``lanes`` values — the 256-bit row-buffer page of the §2.1
macro carries 16 16-bit words in hardware; the model stores values as
``float64`` so results can be compared bit-exactly against a NumPy
reference performing the same operations in the same order.

The unit is purely *functional*: it executes commands and mutates
state, but knows nothing about time.  Timing comes from the
:class:`~repro.pimexec.machine.PimExecMachine`, which emits one
:class:`~repro.memsys.request.MemRequest` per executed command through
the banked memory system.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from .commands import (
    BANK,
    GRF_A,
    GRF_B,
    GRF_REGS,
    Operand,
    PimCommand,
    PimExecError,
    PimOpcode,
    SRF,
    SRF_REGS,
)

__all__ = ["BankExecUnit"]


class BankExecUnit:
    """Execution unit and functional data store of one bank.

    Parameters
    ----------
    lanes:
        Values per page (page width over the 16-bit hardware word).
    name:
        Label for error messages and repr.
    """

    __slots__ = (
        "lanes", "name", "grf_a", "grf_b", "srf", "memory",
        "commands_executed",
    )

    def __init__(self, lanes: int, name: str = "unit") -> None:
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.lanes = int(lanes)
        self.name = name
        self.grf_a = np.zeros((GRF_REGS, self.lanes))
        self.grf_b = np.zeros((GRF_REGS, self.lanes))
        self.srf = np.zeros(SRF_REGS)
        #: Functional bank contents: ``(row, col) -> page`` (sparse;
        #: unwritten pages read as zeros).
        self.memory: _t.Dict[_t.Tuple[int, int], np.ndarray] = {}
        self.commands_executed = 0

    # ------------------------------------------------------------------
    # bank data array
    # ------------------------------------------------------------------
    def load_page(self, row: int, col: int) -> np.ndarray:
        """One page of the bank array (zeros if never written)."""
        page = self.memory.get((row, col))
        if page is None:
            return np.zeros(self.lanes)
        return page.copy()

    def store_page(
        self, row: int, col: int, values: _t.Sequence[float]
    ) -> None:
        page = np.asarray(values, dtype=np.float64)
        if page.shape != (self.lanes,):
            raise PimExecError(
                f"{self.name}: page must have {self.lanes} lanes, got "
                f"shape {page.shape}"
            )
        self.memory[(int(row), int(col))] = page.copy()

    # ------------------------------------------------------------------
    # operand access
    # ------------------------------------------------------------------
    def _coords(
        self, operand: Operand, row: int, col: int
    ) -> _t.Tuple[int, int]:
        if operand.row is not None:
            return operand.row, _t.cast(int, operand.col)
        return row, col

    def read_operand(
        self, operand: Operand, row: int, col: int
    ) -> np.ndarray:
        if operand.space == BANK:
            return self.load_page(*self._coords(operand, row, col))
        if operand.space == GRF_A:
            return self.grf_a[operand.index]
        if operand.space == GRF_B:
            return self.grf_b[operand.index]
        assert operand.space == SRF
        return np.full(self.lanes, self.srf[operand.index])

    def write_operand(
        self, operand: Operand, value: np.ndarray, row: int, col: int
    ) -> None:
        if operand.space == BANK:
            self.store_page(*self._coords(operand, row, col), value)
        elif operand.space == GRF_A:
            self.grf_a[operand.index] = value
        elif operand.space == GRF_B:
            self.grf_b[operand.index] = value
        else:  # pragma: no cover - guarded by PimCommand validation
            raise PimExecError("SRF cannot be a command destination")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    _MAD_DEFAULT_ADDEND = Operand(SRF, 1)  # HBM-PIM's SRF_M

    def execute(self, command: PimCommand, row: int = 0, col: int = 0) -> None:
        """Execute one non-control command at column access (row, col)."""
        opcode = command.opcode
        if command.is_control:
            raise PimExecError(
                f"{opcode.value} is sequencer control, not a bank "
                "operation"
            )
        self.commands_executed += 1
        if opcode is PimOpcode.NOP:
            return
        dst = _t.cast(Operand, command.dst)
        src0 = self.read_operand(_t.cast(Operand, command.src0), row, col)
        if opcode in (PimOpcode.MOV, PimOpcode.FILL):
            self.write_operand(dst, src0.copy(), row, col)
            return
        src1 = self.read_operand(_t.cast(Operand, command.src1), row, col)
        if opcode is PimOpcode.ADD:
            result = src0 + src1
        elif opcode is PimOpcode.MUL:
            result = src0 * src1
        elif opcode is PimOpcode.MAC:
            result = self.read_operand(dst, row, col) + src0 * src1
        else:  # MAD
            addend = self.read_operand(
                command.src2 or self._MAD_DEFAULT_ADDEND, row, col
            )
            result = src0 * src1 + addend
        self.write_operand(dst, result, row, col)

    def __repr__(self) -> str:
        return (
            f"<BankExecUnit {self.name!r} lanes={self.lanes} "
            f"pages={len(self.memory)} "
            f"executed={self.commands_executed}>"
        )
