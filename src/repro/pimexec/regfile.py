"""Per-bank PIM execution unit: register files + bank data array.

Each :class:`BankExecUnit` is the compute logic HBM-PIM places beside
one DRAM bank (or, in bank-group mode, beside one even/odd *pair* of
banks): two vector register files (GRF_A/GRF_B, 8 registers of one page
each), a scalar register file (SRF, 8 entries, broadcast over lanes
when read), and functional access to the attached bank data array(s).
A page is ``lanes`` values — the 256-bit row-buffer page of the §2.1
macro carries 16 16-bit words in hardware.

Arithmetic dtype
----------------
The unit computes in one of two selectable dtypes (:data:`DTYPES`):

* ``"fp64"`` (default) — the idealized model of PRs 1-4: values are
  ``float64``, so results compare bit-exactly against a float64 NumPy
  reference performing the same operations in the same order;
* ``"fp16"`` — *hardware-faithful* IEEE binary16: every register,
  bank page, and intermediate is NumPy ``float16``, so each ADD/MUL/
  MAC/MAD step rounds to nearest-even at 11 significand bits exactly
  like HBM-PIM's 16-bit FPUs.  Overflow saturates to ``inf``,
  subnormals underflow gradually (no flush-to-zero), and NaNs
  propagate — the semantics ``docs/nn.md`` documents and
  ``tests/nn/test_fp16.py`` pins.

Both dtypes keep the bit-exactness contract: a NumPy reference using
the same dtype and the same operation order reproduces the unit's
state bit for bit.

Bank ports
----------
In HBM-PIM's bank-group (half-bank) mode one execution unit is shared
by an even/odd pair of banks; the ``BANK,u`` operand selector picks
which of the pair a command touches.  ``ports=2`` models that sharing:
the data array is keyed by ``(port, row, col)`` and ``Operand.unit``
selects the port.  With the default ``ports=1`` (one unit per bank)
the selector is recorded but ignored, as in PR 3.

The unit is purely *functional*: it executes commands and mutates
state, but knows nothing about time.  Timing comes from the
:class:`~repro.pimexec.machine.PimExecMachine`, which emits one
:class:`~repro.memsys.request.MemRequest` per executed command through
the banked memory system.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from .commands import (
    BANK,
    GRF_A,
    GRF_B,
    GRF_REGS,
    Operand,
    PimCommand,
    PimExecError,
    PimOpcode,
    SRF,
    SRF_REGS,
)

__all__ = ["DTYPES", "BankExecUnit"]

#: Selectable arithmetic dtypes: name -> NumPy dtype.
DTYPES: _t.Dict[str, np.dtype] = {
    "fp64": np.dtype(np.float64),
    "fp16": np.dtype(np.float16),
}


class BankExecUnit:
    """Execution unit and functional data store of one or two banks.

    Parameters
    ----------
    lanes:
        Values per page (page width over the 16-bit hardware word).
    name:
        Label for error messages and repr.
    dtype:
        Arithmetic dtype name (see :data:`DTYPES`): ``"fp64"``
        (default) or ``"fp16"`` for IEEE binary16 rounding per
        operation.
    ports:
        Attached bank data arrays: 1 (per-bank unit, default) or 2
        (bank-group mode — the unit is shared by an even/odd bank pair
        and ``Operand.unit`` selects the port).
    """

    __slots__ = (
        "lanes", "name", "dtype", "np_dtype", "ports",
        "grf_a", "grf_b", "srf", "memory", "commands_executed",
    )

    def __init__(
        self,
        lanes: int,
        name: str = "unit",
        dtype: str = "fp64",
        ports: int = 1,
    ) -> None:
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        if dtype not in DTYPES:
            raise PimExecError(
                f"unknown dtype {dtype!r}; available: "
                f"{tuple(DTYPES)}"
            )
        if ports not in (1, 2):
            raise ValueError(f"ports must be 1 or 2, got {ports}")
        self.lanes = int(lanes)
        self.name = name
        self.dtype = dtype
        self.np_dtype = DTYPES[dtype]
        self.ports = int(ports)
        self.grf_a = np.zeros((GRF_REGS, self.lanes), dtype=self.np_dtype)
        self.grf_b = np.zeros((GRF_REGS, self.lanes), dtype=self.np_dtype)
        self.srf = np.zeros(SRF_REGS, dtype=self.np_dtype)
        #: Functional bank contents: ``(port, row, col) -> page``
        #: (sparse; unwritten pages read as zeros).
        self.memory: _t.Dict[
            _t.Tuple[int, int, int], np.ndarray
        ] = {}
        self.commands_executed = 0

    # ------------------------------------------------------------------
    # bank data array
    # ------------------------------------------------------------------
    def _port(self, port: int) -> int:
        if not 0 <= port < self.ports:
            raise PimExecError(
                f"{self.name}: bank port {port} out of range "
                f"[0, {self.ports})"
            )
        return int(port)

    def load_page(self, row: int, col: int, port: int = 0) -> np.ndarray:
        """One page of a bank array (zeros if never written)."""
        page = self.memory.get((self._port(port), int(row), int(col)))
        if page is None:
            return np.zeros(self.lanes, dtype=self.np_dtype)
        return page.copy()

    def store_page(
        self,
        row: int,
        col: int,
        values: _t.Sequence[float],
        port: int = 0,
    ) -> None:
        """Store one page, rounding ``values`` to the unit's dtype."""
        page = np.asarray(values, dtype=self.np_dtype)
        if page.shape != (self.lanes,):
            raise PimExecError(
                f"{self.name}: page must have {self.lanes} lanes, got "
                f"shape {page.shape}"
            )
        self.memory[(self._port(port), int(row), int(col))] = page.copy()

    # ------------------------------------------------------------------
    # operand access
    # ------------------------------------------------------------------
    def _coords(
        self, operand: Operand, row: int, col: int
    ) -> _t.Tuple[int, int, int]:
        port = (
            operand.unit
            if operand.unit is not None and self.ports > 1
            else 0
        )
        if operand.row is not None:
            return operand.row, _t.cast(int, operand.col), port
        return row, col, port

    def read_operand(
        self, operand: Operand, row: int, col: int
    ) -> np.ndarray:
        if operand.space == BANK:
            r, c, port = self._coords(operand, row, col)
            return self.load_page(r, c, port)
        if operand.space == GRF_A:
            return self.grf_a[operand.index]
        if operand.space == GRF_B:
            return self.grf_b[operand.index]
        assert operand.space == SRF
        return np.full(
            self.lanes, self.srf[operand.index], dtype=self.np_dtype
        )

    def write_operand(
        self, operand: Operand, value: np.ndarray, row: int, col: int
    ) -> None:
        if operand.space == BANK:
            r, c, port = self._coords(operand, row, col)
            self.store_page(r, c, value, port)
        elif operand.space == GRF_A:
            self.grf_a[operand.index] = value
        elif operand.space == GRF_B:
            self.grf_b[operand.index] = value
        else:  # pragma: no cover - guarded by PimCommand validation
            raise PimExecError("SRF cannot be a command destination")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    _MAD_DEFAULT_ADDEND = Operand(SRF, 1)  # HBM-PIM's SRF_M

    def execute(self, command: PimCommand, row: int = 0, col: int = 0) -> None:
        """Execute one non-control command at column access (row, col).

        Every arithmetic step evaluates in the unit's dtype: with
        ``"fp16"``, each product and each sum rounds to binary16
        (``MAC``/``MAD`` round the product first, then the addition —
        no fused multiply-add), matching a NumPy float16 reference
        performing the same expressions.
        """
        opcode = command.opcode
        if command.is_control:
            raise PimExecError(
                f"{opcode.value} is sequencer control, not a bank "
                "operation"
            )
        self.commands_executed += 1
        if opcode is PimOpcode.NOP:
            return
        dst = _t.cast(Operand, command.dst)
        src0 = self.read_operand(_t.cast(Operand, command.src0), row, col)
        if opcode in (PimOpcode.MOV, PimOpcode.FILL):
            self.write_operand(dst, src0.copy(), row, col)
            return
        src1 = self.read_operand(_t.cast(Operand, command.src1), row, col)
        # IEEE semantics by design: overflow saturates to inf and
        # 0 * inf produces NaN — silence numpy's advisory warnings
        with np.errstate(over="ignore", invalid="ignore"):
            if opcode is PimOpcode.ADD:
                result = src0 + src1
            elif opcode is PimOpcode.MUL:
                result = src0 * src1
            elif opcode is PimOpcode.MAC:
                result = self.read_operand(dst, row, col) + src0 * src1
            else:  # MAD
                addend = self.read_operand(
                    command.src2 or self._MAD_DEFAULT_ADDEND, row, col
                )
                result = src0 * src1 + addend
        self.write_operand(dst, result, row, col)

    def __repr__(self) -> str:
        return (
            f"<BankExecUnit {self.name!r} lanes={self.lanes} "
            f"dtype={self.dtype} ports={self.ports} "
            f"pages={len(self.memory)} "
            f"executed={self.commands_executed}>"
        )
