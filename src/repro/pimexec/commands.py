"""HBM-PIM-style command set for per-bank PIM execution units.

One :class:`PimCommand` is one slot of the Command Register File (CRF)
microkernel that every bank of a channel executes in lockstep.  The
vocabulary follows the HBM-PIM / HBM-PIMulator instruction set:

=======  =========================================================
opcode   semantics (elementwise over the ``lanes`` of one page)
=======  =========================================================
``ADD``  ``dst = src0 + src1``
``MUL``  ``dst = src0 * src1``
``MAC``  ``dst = dst + src0 * src1`` (multiply-accumulate)
``MAD``  ``dst = src0 * src1 + src2`` (``src2`` defaults to ``SRF,1``,
         HBM-PIM's dedicated addend scalar ``SRF_M``)
``MOV``  ``dst = src0`` (conventionally GRF → BANK write-back)
``FILL`` ``dst = src0`` (conventionally BANK → GRF load)
``NOP``  no state change (still consumes one column access)
``JUMP`` sequencer control: jump to ``target``, ``count`` times
``EXIT`` sequencer control: kernel complete
=======  =========================================================

Operands name one of four spaces: the bank's DRAM array at the row and
column of the triggering column access (``BANK``), the two vector
register files (``GRF_A``/``GRF_B``, 8 registers of one page each), or
the scalar register file (``SRF``, 8 scalars, broadcast over lanes when
read).  The text syntax matches the HBM-PIMulator trace operands:
``GRF,k`` addresses the combined GRF with ``GRF_A`` as registers 0-7
and ``GRF_B`` as 8-15 (the HBM-PIM encoding), ``BANK`` may carry an
even/odd unit selector and/or an explicit ``row,col`` (``BANK``,
``BANK,u``, ``BANK,row,col``, ``BANK,u,row,col``).
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import typing as _t

from ..errors import ReproError

__all__ = [
    "PimExecError",
    "PimOpcode",
    "ARITH_OPCODES",
    "CONTROL_OPCODES",
    "BANK",
    "GRF_A",
    "GRF_B",
    "SRF",
    "SPACES",
    "GRF_REGS",
    "SRF_REGS",
    "CRF_SIZE",
    "Operand",
    "PimCommand",
    "parse_command",
]


class PimExecError(ReproError, RuntimeError):
    """Raised on malformed PIM commands/programs or execution faults.

    Part of the shared :mod:`repro.errors` taxonomy (still a
    ``RuntimeError`` for backward compatibility).
    """

    code = "PIMEXEC"


class PimOpcode(enum.Enum):
    """CRF command opcodes, valued by their trace mnemonic."""

    ADD = "ADD"
    MUL = "MUL"
    MAC = "MAC"
    MAD = "MAD"
    MOV = "MOV"
    FILL = "FILL"
    NOP = "NOP"
    JUMP = "JUMP"
    EXIT = "EXIT"

    @classmethod
    def from_mnemonic(cls, token: str) -> "PimOpcode":
        try:
            return cls(token.upper())
        except ValueError:
            raise PimExecError(
                f"unknown PIM opcode {token!r}; expected one of "
                f"{[op.value for op in cls]}"
            ) from None


#: Three-operand arithmetic opcodes.
ARITH_OPCODES = frozenset(
    {PimOpcode.ADD, PimOpcode.MUL, PimOpcode.MAC, PimOpcode.MAD}
)
#: Sequencer-internal opcodes (no bank/register dataflow).
CONTROL_OPCODES = frozenset({PimOpcode.JUMP, PimOpcode.EXIT})

#: Operand spaces.
BANK = "bank"
GRF_A = "grf_a"
GRF_B = "grf_b"
SRF = "srf"
SPACES = (BANK, GRF_A, GRF_B, SRF)

#: Register-file geometry (HBM-PIM values).
GRF_REGS = 8
SRF_REGS = 8
CRF_SIZE = 32


@dataclasses.dataclass(frozen=True)
class Operand:
    """One command operand.

    Attributes
    ----------
    space:
        ``"bank"``, ``"grf_a"``, ``"grf_b"``, or ``"srf"``.
    index:
        Register index (``grf_*``/``srf`` spaces only).
    row, col:
        Explicit bank coordinates for ``bank`` operands; ``None`` means
        the operand reads/writes the page addressed by the triggering
        column access (the sequencer's column walk supplies it).
    unit:
        Optional even/odd bank selector (0 = even, 1 = odd) from
        HBM-PIMulator ``BANK,u,…`` operands.  On a per-bank machine
        (every bank its own execution unit) it is recorded but ignored;
        in *bank-group* mode (:class:`~repro.pimexec.machine.
        PimExecMachine` with ``bank_groups=True``) each unit is shared
        by an even/odd bank pair and the selector picks which bank of
        the pair the operand touches.
    """

    space: str
    index: int = 0
    row: _t.Optional[int] = None
    col: _t.Optional[int] = None
    unit: _t.Optional[int] = None

    def __post_init__(self) -> None:
        if self.space not in SPACES:
            raise PimExecError(
                f"unknown operand space {self.space!r}; available: "
                f"{SPACES}"
            )
        if self.space in (GRF_A, GRF_B) and not 0 <= self.index < GRF_REGS:
            raise PimExecError(
                f"GRF index {self.index} out of range [0, {GRF_REGS})"
            )
        if self.space == SRF and not 0 <= self.index < SRF_REGS:
            raise PimExecError(
                f"SRF index {self.index} out of range [0, {SRF_REGS})"
            )
        if self.space != BANK and (
            self.row is not None or self.col is not None
        ):
            raise PimExecError(
                "row/col coordinates are only valid on BANK operands"
            )
        if self.space != BANK and self.unit is not None:
            raise PimExecError(
                "unit selectors are only valid on BANK operands"
            )
        if self.unit is not None and self.unit not in (0, 1):
            raise PimExecError(
                f"BANK unit selector must be 0 (even) or 1 (odd), got "
                f"{self.unit}"
            )
        if (self.row is None) != (self.col is None):
            raise PimExecError(
                "BANK operands need both row and col, or neither"
            )

    # ------------------------------------------------------------------
    @classmethod
    def bank(
        cls,
        row: _t.Optional[int] = None,
        col: _t.Optional[int] = None,
        unit: _t.Optional[int] = None,
    ) -> "Operand":
        return cls(BANK, 0, row, col, unit)

    @classmethod
    def grf_a(cls, index: int) -> "Operand":
        return cls(GRF_A, index)

    @classmethod
    def grf_b(cls, index: int) -> "Operand":
        return cls(GRF_B, index)

    @classmethod
    def srf(cls, index: int) -> "Operand":
        return cls(SRF, index)

    # ------------------------------------------------------------------
    @property
    def is_bank(self) -> bool:
        return self.space == BANK

    @property
    def is_implicit_bank(self) -> bool:
        """BANK operand addressed by the triggering column access."""
        return self.space == BANK and self.row is None

    @classmethod
    def parse(cls, token: str) -> "Operand":
        """Parse an HBM-PIMulator operand token (``LOC[,n[,n[,n]]]``)."""
        parts = token.split(",")
        name = parts[0].upper()
        try:
            numbers = [int(p, 0) for p in parts[1:]]
        except ValueError:
            raise PimExecError(
                f"bad operand {token!r}: non-integer field"
            ) from None
        if name == "BANK":
            if len(numbers) == 0:
                return cls.bank()
            if len(numbers) == 1:
                return cls.bank(unit=numbers[0])
            if len(numbers) == 2:
                return cls.bank(row=numbers[0], col=numbers[1])
            if len(numbers) == 3:
                return cls.bank(
                    unit=numbers[0], row=numbers[1], col=numbers[2]
                )
            raise PimExecError(
                f"bad BANK operand {token!r}: too many fields"
            )
        if len(numbers) != 1:
            raise PimExecError(
                f"bad operand {token!r}: expected {name},INDEX"
            )
        index = numbers[0]
        if name == "GRF":
            # the HBM-PIM encoding: GRF_A is 0-7, GRF_B is 8-15
            if not 0 <= index < 2 * GRF_REGS:
                raise PimExecError(
                    f"GRF index {index} out of range [0, {2 * GRF_REGS})"
                )
            if index < GRF_REGS:
                return cls.grf_a(index)
            return cls.grf_b(index - GRF_REGS)
        if name == "GRF_A":
            return cls.grf_a(index)
        if name == "GRF_B":
            return cls.grf_b(index)
        if name == "SRF":
            return cls.srf(index)
        raise PimExecError(
            f"unknown operand space {parts[0]!r}; expected "
            "BANK/GRF/GRF_A/GRF_B/SRF"
        )

    def __str__(self) -> str:
        if self.space == BANK:
            fields = [
                str(f)
                for f in (self.unit, self.row, self.col)
                if f is not None
            ]
            return ",".join(["BANK"] + fields)
        return f"{self.space.upper()},{self.index}"


#: Operand arity per opcode: (needs dst, number of sources).
_ARITY: _t.Dict[PimOpcode, _t.Tuple[bool, int]] = {
    PimOpcode.ADD: (True, 2),
    PimOpcode.MUL: (True, 2),
    PimOpcode.MAC: (True, 2),
    PimOpcode.MAD: (True, 2),  # src2 optional (defaults to SRF,1)
    PimOpcode.MOV: (True, 1),
    PimOpcode.FILL: (True, 1),
    PimOpcode.NOP: (False, 0),
    PimOpcode.JUMP: (False, 0),
    PimOpcode.EXIT: (False, 0),
}


@dataclasses.dataclass(frozen=True)
class PimCommand:
    """One CRF slot: opcode plus operands or jump control fields."""

    opcode: PimOpcode
    dst: _t.Optional[Operand] = None
    src0: _t.Optional[Operand] = None
    src1: _t.Optional[Operand] = None
    src2: _t.Optional[Operand] = None
    target: int = 0
    count: int = 0

    def __post_init__(self) -> None:
        needs_dst, n_src = _ARITY[self.opcode]
        present = [self.src0, self.src1]
        if needs_dst and self.dst is None:
            raise PimExecError(f"{self.opcode.value} needs a destination")
        if not needs_dst and self.dst is not None:
            raise PimExecError(
                f"{self.opcode.value} takes no destination"
            )
        if sum(s is not None for s in present) != n_src:
            raise PimExecError(
                f"{self.opcode.value} takes {n_src} source operand(s)"
            )
        if self.src2 is not None and self.opcode is not PimOpcode.MAD:
            raise PimExecError("only MAD takes a third source operand")
        if self.dst is not None and self.dst.space == SRF:
            raise PimExecError(
                "SRF is host-written (AB broadcast) — it cannot be a "
                "PIM command destination"
            )
        if self.opcode is PimOpcode.JUMP:
            if self.target < 0:
                raise PimExecError("JUMP target must be >= 0")
            if self.count < 0:
                raise PimExecError("JUMP count must be >= 0")
        elif self.target or self.count:
            raise PimExecError(
                f"{self.opcode.value} takes no jump target/count"
            )

    # ------------------------------------------------------------------
    def operands(self) -> _t.Iterator[Operand]:
        for operand in (self.dst, self.src0, self.src1, self.src2):
            if operand is not None:
                yield operand

    @property
    def is_control(self) -> bool:
        return self.opcode in CONTROL_OPCODES

    @functools.cached_property
    def uses_implicit_bank(self) -> bool:
        """Does any operand read/write the walked column address?

        Cached per (immutable) command: the sequencer asks once per
        dynamic instruction, which a looped kernel repeats millions of
        times.
        """
        return any(op.is_implicit_bank for op in self.operands())

    @property
    def explicit_bank(self) -> _t.Optional[Operand]:
        """The first BANK operand carrying explicit row/col, if any."""
        for operand in self.operands():
            if operand.is_bank and operand.row is not None:
                return operand
        return None

    def __str__(self) -> str:
        if self.opcode is PimOpcode.JUMP:
            return f"JUMP {self.target} {self.count}"
        parts = [self.opcode.value]
        parts.extend(str(op) for op in self.operands())
        return " ".join(parts)


def parse_command(text: str) -> PimCommand:
    """Parse one command from its trace text (``MAC GRF,8 BANK SRF,0``).

    Raises
    ------
    PimExecError
        On unknown mnemonics, malformed operands, or wrong arity.
    """
    tokens = text.split()
    if not tokens:
        raise PimExecError("empty PIM command")
    opcode = PimOpcode.from_mnemonic(tokens[0])
    rest = tokens[1:]
    if opcode is PimOpcode.JUMP:
        if len(rest) not in (0, 2):
            raise PimExecError(
                "JUMP takes either no fields or 'TARGET COUNT'"
            )
        try:
            target, count = (
                (int(rest[0], 0), int(rest[1], 0)) if rest else (0, 0)
            )
        except ValueError:
            raise PimExecError(
                f"bad JUMP fields {rest!r}: expected integers"
            ) from None
        return PimCommand(opcode, target=target, count=count)
    if opcode in (PimOpcode.NOP, PimOpcode.EXIT):
        if rest:
            raise PimExecError(f"{opcode.value} takes no operands")
        return PimCommand(opcode)
    operands = [Operand.parse(token) for token in rest]
    needs_dst, n_src = _ARITY[opcode]
    expected = int(needs_dst) + n_src
    if len(operands) not in (
        (expected, expected + 1) if opcode is PimOpcode.MAD else (expected,)
    ):
        raise PimExecError(
            f"{opcode.value} takes {expected} operand(s), got "
            f"{len(operands)}"
        )
    dst = operands[0]
    sources = operands[1:]
    return PimCommand(
        opcode,
        dst=dst,
        src0=sources[0] if len(sources) > 0 else None,
        src1=sources[1] if len(sources) > 1 else None,
        src2=sources[2] if len(sources) > 2 else None,
    )
