"""repro.pimexec — per-bank PIM execution units over the memory system.

PR 1/2 gave the reproduction a banked, trace-driven memory system whose
PIM support was a single opaque primitive: the all-bank row operation.
This package turns that memory system into an *executable* PIM machine
in the HBM-PIM mold, so "does PIM pay off on workload X" is answered by
running the kernel instead of evaluating a closed form:

* :mod:`~repro.pimexec.commands` — the CRF command vocabulary
  (``ADD``/``MUL``/``MAC``/``MAD``/``MOV``/``FILL``/``NOP``/``JUMP``/
  ``EXIT``) over ``BANK``/``GRF_A``/``GRF_B``/``SRF`` operands;
* :mod:`~repro.pimexec.regfile` — :class:`BankExecUnit`, the per-bank
  register files plus functional bank data array;
* :mod:`~repro.pimexec.sequencer` — :class:`CommandSequencer`, the
  lockstep CRF program counter driven by the host's column walk;
* :mod:`~repro.pimexec.machine` — :class:`PimExecMachine`, which pairs
  every bank of a :class:`~repro.memsys.MemSysConfig` geometry with an
  execution unit and charges every host action (bank writes, register
  broadcasts, CRF downloads, kernel steps) as a memory request, so
  kernel time is measured by the real controllers and row-buffer state
  machines of :mod:`repro.memsys`;
* :mod:`~repro.pimexec.kernels` — built-in kernels (``vector-sum``,
  ``axpy``, ``gemv``) with bit-exact NumPy references and host-only
  twin traces for the host-vs-PIM comparison;
* :mod:`~repro.pimexec.program` — the HBM-PIMulator program-trace
  frontend (``R/W GPR|CFR|MEM``, ``AB W``, ``PIM …`` records with
  per-record dependencies);
* :mod:`~repro.pimexec.compiler` — the bridge lowering
  :mod:`repro.isa` reduction kernels onto pimexec microkernels.

Example
-------
>>> from repro.pimexec import build_kernel, compare_host_pim
>>> comparison = compare_host_pim(build_kernel("vector-sum", n=512))
>>> comparison.correct and comparison.speedup > 1.0
True
"""

from .commands import (
    ARITH_OPCODES,
    CONTROL_OPCODES,
    CRF_SIZE,
    GRF_REGS,
    Operand,
    PimCommand,
    PimExecError,
    PimOpcode,
    SRF_REGS,
    parse_command,
)
from .compiler import CompileError, LoweredKernel, lower_kernel_binary
from .kernels import (
    KERNEL_NAMES,
    KernelComparison,
    PimKernel,
    axpy_kernel,
    build_kernel,
    compare_host_pim,
    gemv_kernel,
    vector_sum_kernel,
)
from .machine import PimExecMachine, PimExecResult, UNIT_MODES
from .program import PimProgram, ProgramRecord, parse_pim_program
from .regfile import BankExecUnit, DTYPES, UnitView, VectorUnitArray
from .sequencer import CommandSequencer

__all__ = [
    "ARITH_OPCODES",
    "CONTROL_OPCODES",
    "CRF_SIZE",
    "GRF_REGS",
    "SRF_REGS",
    "Operand",
    "PimCommand",
    "PimExecError",
    "PimOpcode",
    "parse_command",
    "CompileError",
    "LoweredKernel",
    "lower_kernel_binary",
    "KERNEL_NAMES",
    "KernelComparison",
    "PimKernel",
    "axpy_kernel",
    "build_kernel",
    "compare_host_pim",
    "gemv_kernel",
    "vector_sum_kernel",
    "PimExecMachine",
    "PimExecResult",
    "BankExecUnit",
    "UnitView",
    "VectorUnitArray",
    "UNIT_MODES",
    "DTYPES",
    "CommandSequencer",
    "PimProgram",
    "ProgramRecord",
    "parse_pim_program",
]
