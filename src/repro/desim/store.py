"""Buffered producer/consumer stores (mailboxes).

A :class:`Store` is the DES analogue of a queue of *things*: parcels waiting
at a PIM node, messages in flight at a NIC, ready thread contexts.  Producers
``yield store.put(item)``; consumers ``yield store.get()`` and receive the
item as the event's value.  FIFO by default.

:class:`FilterStore` lets consumers wait for items matching a predicate
(e.g. a reply parcel carrying a specific transaction id).
"""

from __future__ import annotations

import typing as _t
from collections import deque

from .events import Event
from .stats import TimeWeighted, Tally

if _t.TYPE_CHECKING:  # pragma: no cover
    from .core import Simulator

__all__ = ["StorePut", "StoreGet", "Store", "FilterStore"]


class StorePut(Event):
    """Event that triggers when an item has been accepted by the store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: object) -> None:
        super().__init__(store.sim)
        self.item = item
        store._admit_put(self)


class StoreGet(Event):
    """Event that triggers with the retrieved item as its value."""

    __slots__ = ("filter",)

    def __init__(
        self,
        store: "Store",
        predicate: _t.Optional[_t.Callable[[object], bool]] = None,
    ) -> None:
        super().__init__(store.sim)
        self.filter = predicate
        store._admit_get(self)


class Store:
    """FIFO buffer with optional capacity and occupancy statistics.

    Attributes
    ----------
    occupancy:
        :class:`TimeWeighted` number of buffered items, for mean queue
        length of parcel queues (Fig. 12's idle-time behavior is a direct
        function of this signal staying positive).
    waits:
        :class:`Tally` of consumer waiting times.
    """

    def __init__(
        self,
        sim: "Simulator",
        capacity: float = float("inf"),
        name: str = "store",
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: _t.Deque[object] = deque()
        self._putters: _t.Deque[StorePut] = deque()
        self._getters: _t.Deque[StoreGet] = deque()
        self.occupancy = TimeWeighted(f"{name}.items", 0.0, start_time=sim.now)
        self.waits = Tally(f"{name}.wait")
        self._get_enqueue_times: _t.Dict[int, float] = {}
        self.total_puts = 0
        self.total_gets = 0

    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        """Number of items currently buffered."""
        return len(self.items)

    @property
    def waiting_consumers(self) -> int:
        return len(self._getters)

    def put(self, item: object) -> StorePut:
        """Offer ``item``; the returned event triggers on acceptance."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Request the oldest item; the event's value is the item."""
        return StoreGet(self)

    # -- internals ------------------------------------------------------
    def _admit_put(self, put: StorePut) -> None:
        self.total_puts += 1
        self._putters.append(put)
        self._match()

    def _admit_get(self, get: StoreGet) -> None:
        self.total_gets += 1
        self._getters.append(get)
        self._get_enqueue_times[id(get)] = self.sim.now
        self._match()

    def _accept(self, put: StorePut) -> None:
        self.items.append(put.item)
        self.occupancy.add(1.0, self.sim.now)
        put.succeed()

    def _deliver(self, get: StoreGet, item: object) -> None:
        self.occupancy.add(-1.0, self.sim.now)
        enq = self._get_enqueue_times.pop(id(get), self.sim.now)
        self.waits.record(self.sim.now - enq)
        get.succeed(item)

    def _match(self) -> None:
        # accept puts while capacity remains
        while self._putters and len(self.items) < self.capacity:
            self._accept(self._putters.popleft())
        # hand items to waiting consumers
        while self._getters and self.items:
            get = self._getters.popleft()
            self._deliver(get, self.items.popleft())
            # delivering may have freed capacity for blocked producers
            while self._putters and len(self.items) < self.capacity:
                self._accept(self._putters.popleft())

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} level={self.level} "
            f"getters={len(self._getters)} putters={len(self._putters)}>"
        )


class FilterStore(Store):
    """Store whose consumers may wait for items matching a predicate.

    ``store.get_matching(pred)`` delivers the *oldest* item satisfying
    ``pred``.  Plain :meth:`get` behaves like the base class.
    """

    def get_matching(
        self, predicate: _t.Callable[[object], bool]
    ) -> StoreGet:
        """Request the oldest item for which ``predicate(item)`` is true."""
        return StoreGet(self, predicate)

    def _match(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            self._accept(self._putters.popleft())

        progress = True
        while progress:
            progress = False
            for get in list(self._getters):
                if get.filter is None:
                    if self.items:
                        self._getters.remove(get)
                        self._deliver(get, self.items.popleft())
                        progress = True
                else:
                    for idx, item in enumerate(self.items):
                        if get.filter(item):
                            self._getters.remove(get)
                            del self.items[idx]
                            self._deliver(get, item)
                            progress = True
                            break
                if progress:
                    while (
                        self._putters and len(self.items) < self.capacity
                    ):
                        self._accept(self._putters.popleft())
                    break
