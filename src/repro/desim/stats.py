"""Statistics collectors for simulation output analysis.

Mirrors the statistics SES/workbench models relied on:

* :class:`Tally` — observation-based statistics (service times, response
  times) with numerically stable streaming moments (Welford) and Student-t
  confidence intervals.
* :class:`TimeWeighted` — time-persistent statistics (queue length,
  busy/idle state) integrating a piecewise-constant signal over time.
* :class:`Counter` — monotone event counts and rates.
* :class:`BatchMeans` — batch-means variance estimation for steady-state
  outputs of a single long run.
* :class:`StateTimer` — time-in-state bookkeeping for multi-state entities
  (the three processor states of the parcel study: busy / memory / idle).
"""

from __future__ import annotations

import math
import typing as _t

__all__ = [
    "Tally",
    "TimeWeighted",
    "Counter",
    "BatchMeans",
    "StateTimer",
    "t_quantile",
]


def t_quantile(confidence: float, dof: int) -> float:
    """Two-sided Student-t quantile, e.g. ``t_quantile(0.95, 9)``.

    Uses :mod:`scipy.stats` when available; falls back to the normal
    quantile for large ``dof``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if dof < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {dof}")
    from scipy import stats as _st

    return float(_st.t.ppf(0.5 + confidence / 2.0, dof))


class Tally:
    """Streaming observation statistics (count/mean/variance/min/max).

    Uses Welford's algorithm so variance is stable for long runs with
    values of any magnitude.

    Examples
    --------
    >>> t = Tally("service")
    >>> for x in (1.0, 2.0, 3.0):
    ...     t.record(x)
    >>> t.mean
    2.0
    """

    __slots__ = ("name", "_n", "_mean", "_m2", "_min", "_max", "_sum")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._sum = 0.0

    def record(self, value: float) -> None:
        """Add one observation."""
        value = float(value)
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def record_many(self, values: _t.Iterable[float]) -> None:
        """Add a batch of observations."""
        for value in values:
            self.record(value)

    # -- accessors -----------------------------------------------------
    @property
    def count(self) -> int:
        return self._n

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        """Sample mean; ``nan`` with no observations."""
        return self._mean if self._n else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (``ddof=1``); ``nan`` for n < 2."""
        return self._m2 / (self._n - 1) if self._n >= 2 else math.nan

    @property
    def std(self) -> float:
        var = self.variance
        return math.sqrt(var) if var == var else math.nan

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self._n) if self._n >= 2 else math.nan

    @property
    def minimum(self) -> float:
        return self._min if self._n else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self._n else math.nan

    def confidence_interval(
        self, confidence: float = 0.95
    ) -> _t.Tuple[float, float]:
        """Two-sided Student-t confidence interval for the mean."""
        if self._n < 2:
            return (math.nan, math.nan)
        half = t_quantile(confidence, self._n - 1) * self.sem
        return (self._mean - half, self._mean + half)

    def merge(self, other: "Tally") -> "Tally":
        """Combine with another tally (parallel-run reduction).

        Uses Chan et al.'s pairwise update so moments remain exact.
        """
        merged = Tally(self.name or other.name)
        n = self._n + other._n
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged._n = n
        merged._mean = self._mean + delta * (other._n / n) if n else 0.0
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self._n * other._n / n
        )
        merged._sum = self._sum + other._sum
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    def to_dict(self) -> dict:
        """Serializable summary of the tally."""
        return {
            "name": self.name,
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "total": self.total,
        }

    def state_dict(self) -> dict:
        """The exact internal state (bit-faithful round trip).

        Unlike :meth:`to_dict` (a human-oriented summary), this carries
        the raw Welford accumulators, so ``load_state(state_dict())``
        reconstructs a collector whose every future observable is
        bit-identical — the contract the sharded replay farm's stats
        merge relies on.
        """
        return {
            "n": self._n,
            "mean": self._mean,
            "m2": self._m2,
            "min": self._min,
            "max": self._max,
            "sum": self._sum,
        }

    def load_state(self, state: _t.Mapping[str, _t.Any]) -> "Tally":
        """Restore the exact state captured by :meth:`state_dict`."""
        self._n = int(state["n"])
        self._mean = float(state["mean"])
        self._m2 = float(state["m2"])
        self._min = float(state["min"])
        self._max = float(state["max"])
        self._sum = float(state["sum"])
        return self

    def __repr__(self) -> str:
        return (
            f"<Tally {self.name!r} n={self._n} mean={self.mean:.6g} "
            f"min={self.minimum:.6g} max={self.maximum:.6g}>"
            if self._n
            else f"<Tally {self.name!r} empty>"
        )


class TimeWeighted:
    """Time-persistent statistic for a piecewise-constant signal.

    Tracks the integral of the signal over time, enabling time averages
    such as mean queue length and utilization.

    Parameters
    ----------
    initial:
        Signal value at ``start_time``.
    start_time:
        When observation begins.
    """

    __slots__ = ("name", "_value", "_last", "_start", "_integral",
                 "_min", "_max")

    def __init__(
        self, name: str = "", initial: float = 0.0, start_time: float = 0.0
    ) -> None:
        self.name = name
        self._value = float(initial)
        self._last = float(start_time)
        self._start = float(start_time)
        self._integral = 0.0
        self._min = float(initial)
        self._max = float(initial)

    @property
    def value(self) -> float:
        """Current signal value."""
        return self._value

    def update(self, value: float, now: float) -> None:
        """Set the signal to ``value`` at time ``now``."""
        if now < self._last:
            raise ValueError(
                f"time went backwards: {now} < {self._last} "
                f"in TimeWeighted {self.name!r}"
            )
        self._integral += self._value * (now - self._last)
        self._last = now
        self._value = float(value)
        if self._value < self._min:
            self._min = self._value
        if self._value > self._max:
            self._max = self._value

    def add(self, delta: float, now: float) -> None:
        """Increment the signal by ``delta`` at time ``now``."""
        self.update(self._value + delta, now)

    def integral(self, now: _t.Optional[float] = None) -> float:
        """Integral of the signal from start to ``now`` (default: last)."""
        if now is None:
            return self._integral
        if now < self._last:
            raise ValueError(f"time went backwards: {now} < {self._last}")
        return self._integral + self._value * (now - self._last)

    def time_average(self, now: _t.Optional[float] = None) -> float:
        """Time-averaged value of the signal over the observation window."""
        end = self._last if now is None else now
        span = end - self._start
        if span <= 0:
            return math.nan
        return self.integral(now) / span

    @property
    def minimum(self) -> float:
        return self._min

    @property
    def maximum(self) -> float:
        return self._max

    def to_dict(self, now: _t.Optional[float] = None) -> dict:
        return {
            "name": self.name,
            "value": self._value,
            "time_average": self.time_average(now),
            "min": self._min,
            "max": self._max,
        }

    def state_dict(self) -> dict:
        """The exact internal state (bit-faithful round trip)."""
        return {
            "value": self._value,
            "last": self._last,
            "start": self._start,
            "integral": self._integral,
            "min": self._min,
            "max": self._max,
        }

    def load_state(self, state: _t.Mapping[str, _t.Any]) -> "TimeWeighted":
        """Restore the exact state captured by :meth:`state_dict`."""
        self._value = float(state["value"])
        self._last = float(state["last"])
        self._start = float(state["start"])
        self._integral = float(state["integral"])
        self._min = float(state["min"])
        self._max = float(state["max"])
        return self

    def __repr__(self) -> str:
        return (
            f"<TimeWeighted {self.name!r} value={self._value:.6g} "
            f"avg={self.time_average():.6g}>"
        )


class Counter:
    """Monotone event counter with rate helpers."""

    __slots__ = ("name", "_count", "_start")

    def __init__(self, name: str = "", start_time: float = 0.0) -> None:
        self.name = name
        self._count = 0
        self._start = float(start_time)

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError("Counter cannot decrease")
        self._count += by

    @property
    def count(self) -> int:
        return self._count

    def rate(self, now: float) -> float:
        """Events per unit time since observation started."""
        span = now - self._start
        return self._count / span if span > 0 else math.nan

    def state_dict(self) -> dict:
        """The exact internal state (bit-faithful round trip)."""
        return {"count": self._count, "start": self._start}

    def load_state(self, state: _t.Mapping[str, _t.Any]) -> "Counter":
        """Restore the exact state captured by :meth:`state_dict`."""
        self._count = int(state["count"])
        self._start = float(state["start"])
        return self

    def __repr__(self) -> str:
        return f"<Counter {self.name!r} count={self._count}>"


class BatchMeans:
    """Batch-means estimator for steady-state simulation output.

    Splits a stream of observations into fixed-size batches; the batch
    means behave approximately i.i.d. for large batches, giving valid
    confidence intervals from a single long run (the standard technique
    for steady-state queuing studies like the paper's).
    """

    __slots__ = ("batch_size", "_current", "_in_batch", "batches")

    def __init__(self, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self._current = 0.0
        self._in_batch = 0
        self.batches = Tally("batch-means")

    def record(self, value: float) -> None:
        self._current += float(value)
        self._in_batch += 1
        if self._in_batch == self.batch_size:
            self.batches.record(self._current / self.batch_size)
            self._current = 0.0
            self._in_batch = 0

    @property
    def complete_batches(self) -> int:
        return self.batches.count

    @property
    def mean(self) -> float:
        return self.batches.mean

    def confidence_interval(
        self, confidence: float = 0.95
    ) -> _t.Tuple[float, float]:
        return self.batches.confidence_interval(confidence)


class StateTimer:
    """Tracks time spent in each of a set of named states.

    The parcel study classifies every processor as *busy* (useful ops),
    *memory* (local access) or *idle* (waiting); idle-time comparisons are
    the dependent variable of Fig. 12.  This collector generalizes that
    bookkeeping.
    """

    __slots__ = ("name", "_state", "_since", "_totals", "_start")

    def __init__(
        self, initial: str, now: float = 0.0, name: str = ""
    ) -> None:
        self.name = name
        self._state = initial
        self._since = float(now)
        self._start = float(now)
        self._totals: _t.Dict[str, float] = {}

    @property
    def state(self) -> str:
        return self._state

    def transition(self, state: str, now: float) -> None:
        """Enter ``state`` at time ``now``."""
        if now < self._since:
            raise ValueError(f"time went backwards: {now} < {self._since}")
        self._totals[self._state] = (
            self._totals.get(self._state, 0.0) + (now - self._since)
        )
        self._state = state
        self._since = now

    def total(self, state: str, now: _t.Optional[float] = None) -> float:
        """Cumulative time in ``state`` (including an open interval)."""
        base = self._totals.get(state, 0.0)
        if now is not None and state == self._state:
            if now < self._since:
                raise ValueError("time went backwards")
            base += now - self._since
        return base

    def fraction(self, state: str, now: float) -> float:
        """Share of the observation window spent in ``state``."""
        span = now - self._start
        if span <= 0:
            return math.nan
        return self.total(state, now) / span

    def totals(self, now: float) -> _t.Dict[str, float]:
        """All state totals, closing the open interval at ``now``."""
        out = dict(self._totals)
        out[self._state] = out.get(self._state, 0.0) + (now - self._since)
        return out

    def state_dict(self) -> dict:
        """The exact internal state (bit-faithful round trip)."""
        return {
            "state": self._state,
            "since": self._since,
            "start": self._start,
            "totals": dict(self._totals),
        }

    def load_state(self, state: _t.Mapping[str, _t.Any]) -> "StateTimer":
        """Restore the exact state captured by :meth:`state_dict`."""
        self._state = str(state["state"])
        self._since = float(state["since"])
        self._start = float(state["start"])
        self._totals = {
            str(key): float(value)
            for key, value in dict(state["totals"]).items()
        }
        return self

    def __repr__(self) -> str:
        return f"<StateTimer {self.name!r} state={self._state!r}>"
