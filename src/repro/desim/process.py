"""Generator-based simulation processes.

A *process* wraps a Python generator that models an active entity (a
processor, a PIM node, a parcel in flight).  The generator advances by
``yield``-ing :class:`~repro.desim.events.Event` instances; the process
suspends until the yielded event is processed, then resumes with the event's
value (or has the event's exception thrown into it, if the event failed).

A :class:`Process` is itself an event: it triggers when the generator
returns, with the generator's return value.  This allows fork/join modeling
(e.g. the Fig. 4 thread timeline of the paper: a coordinator spawns ``N``
LWP-thread processes and yields ``AllOf`` their completion events).
"""

from __future__ import annotations

import typing as _t

from .errors import Interrupt, SchedulingError
from .events import Event, URGENT

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import Simulator

__all__ = ["Process", "ProcessGenerator"]

#: Type alias for generators usable as processes.
ProcessGenerator = _t.Generator[Event, object, object]


class Process(Event):
    """An active entity driven by a generator of events.

    Create via :meth:`Simulator.process`; do not instantiate directly unless
    you are extending the engine.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: ProcessGenerator,
        name: _t.Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        #: The event this process is currently waiting on (``None`` if the
        #: process is being initialized, running, or finished).
        self._target: _t.Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")

        # Kick the generator off at the current simulation time via an
        # urgent bootstrap event, so process creation order is respected.
        start = Event(sim)
        start._ok = True
        start._value = None
        start.callbacks.append(self._resume)  # type: ignore[union-attr]
        sim.schedule(start, priority=URGENT)
        self._target = start

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """``True`` while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> _t.Optional[Event]:
        """The event this process is waiting for, if any."""
        return self._target

    # ------------------------------------------------------------------
    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`~repro.desim.errors.Interrupt` into the process.

        The process is detached from whatever event it was waiting on (that
        event may still trigger later but will no longer resume this
        process) and resumed immediately (urgent priority) with the
        interrupt raised at its current ``yield``.
        """
        if self.triggered:
            raise SchedulingError(f"cannot interrupt finished {self!r}")

        interruption = Event(self.sim)
        interruption._ok = False
        interruption._value = Interrupt(cause)
        interruption._defused = True
        interruption.callbacks.append(self._on_interrupt)  # type: ignore[union-attr]
        self.sim.schedule(interruption, priority=URGENT)

    def _on_interrupt(self, event: Event) -> None:
        if self.triggered:  # finished before the interrupt was processed
            return
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._resume(event)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        sim = self.sim
        sim._active_process = self
        try:
            while True:
                try:
                    if event._ok:
                        next_event = self._generator.send(event._value)
                    else:
                        # The process handles (or propagates) the failure;
                        # either way it no longer surfaces from run().
                        event._defused = True
                        exc = _t.cast(BaseException, event._value)
                        next_event = self._generator.throw(exc)
                except StopIteration as stop:
                    self._target = None
                    self._ok = True
                    self._value = stop.value
                    sim.schedule(self)
                    return
                except BaseException as exc:
                    self._target = None
                    self._ok = False
                    self._value = exc
                    sim.schedule(self)
                    return

                if not isinstance(next_event, Event):
                    raise TypeError(
                        f"process {self.name!r} yielded {next_event!r}; "
                        "processes must yield Event instances"
                    )
                if next_event.sim is not sim:
                    raise SchedulingError(
                        f"process {self.name!r} yielded an event from a "
                        "different simulator"
                    )

                if next_event.callbacks is not None:
                    # Still pending (or triggered but unprocessed): wait.
                    next_event.add_callback(self._resume)
                    self._target = next_event
                    return
                # Already processed: consume its value synchronously.
                event = next_event
        finally:
            sim._active_process = None

    def __repr__(self) -> str:
        state = "alive" if not self.triggered else "finished"
        return f"<Process {self.name!r} {state} at {id(self):#x}>"
