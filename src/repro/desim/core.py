"""The simulation kernel: event heap, clock, and run loop.

:class:`Simulator` is the root object of every model in this package.  It
owns the event calendar (a binary heap keyed by ``(time, priority, seq)``)
and the simulation clock, creates events/timeouts/processes, and exposes
``run`` / ``step`` execution control.

Design notes
------------
* Time is a ``float`` in *model units*; the PIM studies use HWP clock cycles
  (1 cycle = 1 ns for the Table 1 configuration).
* Determinism: two events scheduled for the same time and priority are
  processed in insertion order (monotonic sequence counter), so repeated
  runs with the same seeds produce identical trajectories.
* Unhandled failures: a failed event that no process defuses re-raises its
  exception out of :meth:`Simulator.run` — silent model errors are bugs.
"""

from __future__ import annotations

import heapq
import typing as _t
from itertools import count

from .errors import EmptySchedule, SchedulingError, StopSimulation
from .events import Event, Timeout, AllOf, AnyOf, NORMAL, URGENT
from .process import Process, ProcessGenerator

if _t.TYPE_CHECKING:  # pragma: no cover
    from .trace import Tracer

__all__ = ["Simulator"]


class Simulator:
    """Discrete-event simulation kernel.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (default ``0.0``).
    tracer:
        Optional :class:`~repro.desim.trace.Tracer` receiving structured
        trace records from instrumented components.

    Examples
    --------
    >>> sim = Simulator()
    >>> def proc(sim):
    ...     yield sim.timeout(5.0)
    ...     return sim.now
    >>> p = sim.process(proc(sim))
    >>> sim.run()
    >>> p.value
    5.0
    """

    def __init__(
        self,
        start_time: float = 0.0,
        tracer: _t.Optional["Tracer"] = None,
    ) -> None:
        self._now = float(start_time)
        self._heap: list = []
        self._seq = count()
        self._active_process: _t.Optional[Process] = None
        self.tracer = tracer

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> _t.Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._heap[0][0] if self._heap else float("inf")

    def __len__(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def at(self, when: float, value: object = None) -> Event:
        """Create an event that triggers at *absolute* time ``when``.

        Unlike ``timeout(when - now)``, the event fires at exactly the
        float ``when`` — ``now + (when - now)`` can differ from ``when``
        in the last ulps, which matters to models (like the memory
        system's timestamped trace injector) that must reproduce trace
        timestamps bit-for-bit across replay engines.

        Raises
        ------
        SchedulingError
            If ``when`` lies in the past.
        """
        when = float(when)
        if when < self._now:
            raise SchedulingError(
                f"cannot schedule an event at {when!r}, in the past "
                f"(now={self._now!r})"
            )
        event = Event(self)
        event._ok = True
        event._value = value
        heapq.heappush(
            self._heap, (when, NORMAL, next(self._seq), event)
        )
        return event

    def process(
        self, generator: ProcessGenerator, name: _t.Optional[str] = None
    ) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: _t.Iterable[Event]) -> AllOf:
        """Event that triggers when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: _t.Iterable[Event]) -> AnyOf:
        """Event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # scheduling & execution
    # ------------------------------------------------------------------
    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Insert ``event`` into the calendar ``delay`` units from now."""
        if delay < 0:
            raise SchedulingError(
                f"cannot schedule {event!r} {delay!r} units into the past"
            )
        heapq.heappush(
            self._heap, (self._now + delay, priority, next(self._seq), event)
        )

    def step(self) -> None:
        """Process the single next event.

        Advances the clock to the event's timestamp, runs its callbacks and
        surfaces unhandled failures.
        """
        try:
            when, _prio, _seq, event = heapq.heappop(self._heap)
        except IndexError:
            raise EmptySchedule("no more events to process") from None
        self._now = when
        event._process()
        if event._ok is False and not event._defused:
            raise _t.cast(BaseException, event._value)

    def run(self, until: _t.Union[None, float, int, Event] = None) -> object:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the calendar is empty.
            * a number — process every event scheduled at ``time <= until``
              then set the clock to ``until``.
            * an :class:`Event` — run until that event is processed and
              return its value (raises if the event failed and also raises
              ``RuntimeError`` if the calendar empties first).

        Returns
        -------
        object
            ``until.value`` when ``until`` is an event, else ``None``.
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            sentinel = until

            def _stop(event: Event) -> None:
                raise StopSimulation(event)

            if sentinel.callbacks is None:  # already processed
                if sentinel._ok is False:
                    raise _t.cast(BaseException, sentinel._value)
                return sentinel._value
            sentinel.add_callback(_stop)
            try:
                while self._heap:
                    self.step()
            except StopSimulation:
                if sentinel._ok is False:
                    sentinel._defused = True
                    raise _t.cast(BaseException, sentinel._value)
                return sentinel._value
            raise RuntimeError(
                f"simulation ran out of events before {sentinel!r} triggered"
            )

        horizon = float(until)
        if horizon < self._now:
            raise SchedulingError(
                f"until={horizon!r} lies in the past (now={self._now!r})"
            )
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def trace(self, kind: str, **fields: object) -> None:
        """Emit a trace record if a tracer is attached (cheap no-op else)."""
        if self.tracer is not None:
            self.tracer.record(self._now, kind, fields)

    def __repr__(self) -> str:
        return f"<Simulator now={self._now!r} pending={len(self._heap)}>"
