"""repro.desim — a from-scratch discrete-event simulation engine.

This package replaces the commercial HyPerformix SES/workbench tool used by
the SC'04 paper with an open, reproducible, process-based DES kernel:

* :class:`Simulator` — event heap, clock, run loop.
* :class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf` — the
  coordination primitives processes yield on.
* :class:`Process` — generator-driven active entities with interrupts.
* :class:`Resource` / :class:`PriorityResource` — capacity-constrained
  service centers with queue-length/utilization statistics.
* :class:`Store` / :class:`FilterStore` — producer/consumer mailboxes.
* :class:`RandomStreams` + distributions — reproducible named RNG streams.
* :class:`Tally`, :class:`TimeWeighted`, :class:`StateTimer`,
  :class:`BatchMeans`, :class:`Counter` — output statistics.
* :class:`Tracer` — structured event tracing.

Example
-------
>>> from repro.desim import Simulator
>>> sim = Simulator()
>>> def worker(sim, results):
...     yield sim.timeout(3.0)
...     results.append(sim.now)
>>> results = []
>>> _ = sim.process(worker(sim, results))
>>> sim.run()
>>> results
[3.0]
"""

from .core import Simulator
from .errors import (
    EmptySchedule,
    Interrupt,
    SchedulingError,
    SimulationError,
    StopSimulation,
)
from .events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    NORMAL,
    PENDING,
    Timeout,
    URGENT,
)
from .process import Process, ProcessGenerator
from .resources import PriorityResource, Request, Resource
from .rng import (
    Bernoulli,
    Deterministic,
    DiscreteChoice,
    Distribution,
    Erlang,
    Exponential,
    Geometric,
    NamespacedStreams,
    RandomStreams,
    Uniform,
    as_distribution,
)
from .stats import (
    BatchMeans,
    Counter,
    StateTimer,
    Tally,
    TimeWeighted,
    t_quantile,
)
from .store import FilterStore, Store, StoreGet, StorePut
from .trace import TraceRecord, Tracer

__all__ = [
    # kernel
    "Simulator",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "Process",
    "ProcessGenerator",
    "PENDING",
    "URGENT",
    "NORMAL",
    # errors
    "SimulationError",
    "SchedulingError",
    "EmptySchedule",
    "StopSimulation",
    "Interrupt",
    # resources & stores
    "Resource",
    "PriorityResource",
    "Request",
    "Store",
    "FilterStore",
    "StorePut",
    "StoreGet",
    # rng
    "RandomStreams",
    "NamespacedStreams",
    "Distribution",
    "Deterministic",
    "Exponential",
    "Uniform",
    "Erlang",
    "Geometric",
    "Bernoulli",
    "DiscreteChoice",
    "as_distribution",
    # stats
    "Tally",
    "TimeWeighted",
    "Counter",
    "BatchMeans",
    "StateTimer",
    "t_quantile",
    # trace
    "Tracer",
    "TraceRecord",
]
