"""Exception types for the :mod:`repro.desim` discrete-event engine."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the simulation engine."""


class SchedulingError(SimulationError):
    """An event was scheduled or triggered in an illegal way.

    Examples: succeeding an event twice, scheduling into the past, or
    adding a callback to an event that has already been processed.
    """


class EmptySchedule(SimulationError):
    """``step()`` was called with no events left in the event queue."""


class StopSimulation(Exception):
    """Internal control-flow exception used by :meth:`Simulator.run`.

    Not a :class:`SimulationError`: user code should never see it.
    """

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The interrupting party may attach an arbitrary ``cause`` which the
    interrupted process can inspect, e.g. to distinguish failure injection
    from preemption.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The cause passed to :meth:`Process.interrupt`, if any."""
        return self.args[0]
