"""Reproducible random-number streams and service-time distributions.

The paper's studies are *statistical parametric models*: instruction mixes,
cache misses and remote-access decisions are Bernoulli draws, and service
times are distributions.  This module gives each model component its own
named, independently-seeded :class:`numpy.random.Generator` stream so that

* experiments are exactly reproducible given a root seed, and
* changing the sampling pattern of one component does not perturb any other
  (common random numbers across configurations — the variance-reduction
  practice SES/workbench models used).

Distribution objects are small callables with known means so deterministic
(expected-value) runs can reuse the same model code.
"""

from __future__ import annotations

import hashlib
import math
import typing as _t

import numpy as np

__all__ = [
    "RandomStreams",
    "NamespacedStreams",
    "Distribution",
    "Deterministic",
    "Exponential",
    "Uniform",
    "Erlang",
    "Geometric",
    "Bernoulli",
    "DiscreteChoice",
    "as_distribution",
]


def _stable_hash64(text: str) -> int:
    """64-bit stable hash of ``text`` (Python's ``hash`` is salted)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """Factory of named, independent, reproducible random streams.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> a = streams.stream("hwp.cache")
    >>> b = streams.stream("lwp.0.memory")
    >>> a is streams.stream("hwp.cache")   # cached per name
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: _t.Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        gen = self._cache.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=(self.seed, _stable_hash64(name))
            )
            gen = np.random.default_rng(seq)
            self._cache[name] = gen
        return gen

    def spawn(self, prefix: str) -> "NamespacedStreams":
        """A child factory whose streams are namespaced under ``prefix``."""
        return NamespacedStreams(self, prefix)

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self.seed} streams={len(self._cache)}>"


class NamespacedStreams(RandomStreams):
    """View of a parent :class:`RandomStreams` under a name prefix.

    ``NamespacedStreams(parent, "lwp.3").stream("memory")`` is exactly
    ``parent.stream("lwp.3.memory")`` — components can be given private
    stream factories without knowing their global name.
    """

    def __init__(self, parent: RandomStreams, prefix: str) -> None:
        super().__init__(parent.seed)
        self._parent = parent
        self._prefix = prefix

    def stream(self, name: str) -> np.random.Generator:
        return self._parent.stream(f"{self._prefix}.{name}")

    def __repr__(self) -> str:
        return f"<NamespacedStreams prefix={self._prefix!r}>"


class Distribution:
    """Base class for service-time / quantity distributions.

    Subclasses implement :meth:`sample` and :attr:`mean`; models call
    ``dist.sample(rng)`` in stochastic mode or ``dist.mean`` in
    deterministic (expected-value) mode.
    """

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    @property
    def mean(self) -> float:
        raise NotImplementedError

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vectorized sampling (default: loop; subclasses override)."""
        return np.array([self.sample(rng) for _ in range(n)], dtype=float)


class Deterministic(Distribution):
    """Always returns the same value (expected-value modeling)."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value)

    @property
    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Deterministic({self.value!r})"


class Exponential(Distribution):
    """Exponential distribution parameterized by its *mean*."""

    __slots__ = ("_mean",)

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self._mean, size=n)

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean!r})"


class Uniform(Distribution):
    """Uniform distribution on ``[low, high)``."""

    __slots__ = ("low", "high")

    def __init__(self, low: float, high: float) -> None:
        if high < low:
            raise ValueError(f"need low <= high, got [{low}, {high})")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def __repr__(self) -> str:
        return f"Uniform({self.low!r}, {self.high!r})"


class Erlang(Distribution):
    """Erlang-k distribution parameterized by shape ``k`` and *mean*.

    Useful for service times less variable than exponential (k > 1).
    """

    __slots__ = ("k", "_mean")

    def __init__(self, k: int, mean: float) -> None:
        if k < 1:
            raise ValueError(f"shape k must be >= 1, got {k}")
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self.k = int(k)
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.k, self._mean / self.k))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.gamma(self.k, self._mean / self.k, size=n)

    @property
    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Erlang(k={self.k}, mean={self._mean!r})"


class Geometric(Distribution):
    """Number of Bernoulli(p) trials until first success (support >= 1).

    Models run lengths such as "ops until the next memory access" when the
    per-op memory probability is ``p``; mean is ``1/p``.
    """

    __slots__ = ("p",)

    def __init__(self, p: float) -> None:
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        self.p = float(p)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.geometric(self.p))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.geometric(self.p, size=n).astype(float)

    @property
    def mean(self) -> float:
        return 1.0 / self.p

    def __repr__(self) -> str:
        return f"Geometric(p={self.p!r})"


class Bernoulli(Distribution):
    """Bernoulli(p) indicator (1.0 with probability ``p`` else 0.0)."""

    __slots__ = ("p",)

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = float(p)

    def sample(self, rng: np.random.Generator) -> float:
        return 1.0 if rng.random() < self.p else 0.0

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return (rng.random(n) < self.p).astype(float)

    @property
    def mean(self) -> float:
        return self.p

    def __repr__(self) -> str:
        return f"Bernoulli(p={self.p!r})"


class DiscreteChoice(Distribution):
    """Weighted choice over a finite set of numeric outcomes."""

    __slots__ = ("values", "probabilities")

    def __init__(
        self,
        values: _t.Sequence[float],
        probabilities: _t.Optional[_t.Sequence[float]] = None,
    ) -> None:
        self.values = np.asarray(values, dtype=float)
        if len(self.values) == 0:
            raise ValueError("values must be non-empty")
        if probabilities is None:
            probabilities = np.full(len(self.values), 1.0 / len(self.values))
        probs = np.asarray(probabilities, dtype=float)
        if probs.shape != self.values.shape:
            raise ValueError("values and probabilities differ in length")
        if np.any(probs < 0) or not math.isclose(
            float(probs.sum()), 1.0, rel_tol=1e-9, abs_tol=1e-12
        ):
            raise ValueError("probabilities must be >= 0 and sum to 1")
        self.probabilities = probs

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.choice(self.values, p=self.probabilities))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(self.values, p=self.probabilities, size=n)

    @property
    def mean(self) -> float:
        return float(np.dot(self.values, self.probabilities))

    def __repr__(self) -> str:
        return f"DiscreteChoice(values={self.values.tolist()!r})"


def as_distribution(
    value: _t.Union[Distribution, float, int]
) -> Distribution:
    """Coerce a bare number to :class:`Deterministic`; pass others through."""
    if isinstance(value, Distribution):
        return value
    if isinstance(value, (int, float)):
        return Deterministic(float(value))
    raise TypeError(f"cannot interpret {value!r} as a distribution")
