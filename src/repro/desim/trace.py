"""Structured event tracing.

SES/workbench offered model animation and tracing; this module is the
batch-friendly equivalent: components emit ``(time, kind, fields)`` records
through :meth:`Simulator.trace`, and the :class:`Tracer` filters, bounds and
exports them.  Tracing is off by default (a ``None`` tracer costs one
attribute check per call site).
"""

from __future__ import annotations

import typing as _t
from collections import deque

__all__ = ["TraceRecord", "Tracer"]


class TraceRecord(_t.NamedTuple):
    """One trace entry: simulation time, record kind, payload fields."""

    time: float
    kind: str
    fields: _t.Mapping[str, object]


class Tracer:
    """Collects :class:`TraceRecord` entries with filtering and bounding.

    Parameters
    ----------
    kinds:
        If given, only record kinds in this set.
    max_records:
        Ring-buffer bound; oldest records are dropped beyond it.

    Examples
    --------
    >>> tracer = Tracer(kinds={"parcel.send"})
    >>> tracer.record(1.0, "parcel.send", {"src": 0, "dst": 3})
    >>> tracer.record(1.5, "cache.miss", {})   # filtered out
    >>> len(tracer)
    1
    """

    def __init__(
        self,
        kinds: _t.Optional[_t.Iterable[str]] = None,
        max_records: _t.Optional[int] = None,
    ) -> None:
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.records: _t.Deque[TraceRecord] = deque(maxlen=max_records)
        self.dropped = 0

    def record(
        self, time: float, kind: str, fields: _t.Mapping[str, object]
    ) -> None:
        """Store one record (subject to the kind filter and bound)."""
        if self.kinds is not None and kind not in self.kinds:
            return
        if (
            self.records.maxlen is not None
            and len(self.records) == self.records.maxlen
        ):
            self.dropped += 1
        self.records.append(TraceRecord(time, kind, dict(fields)))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> _t.Iterator[TraceRecord]:
        return iter(self.records)

    def of_kind(self, kind: str) -> _t.List[TraceRecord]:
        """All records of one kind, in time order."""
        return [r for r in self.records if r.kind == kind]

    def to_rows(self) -> _t.List[dict]:
        """Flatten records to dicts (time/kind + payload columns)."""
        rows = []
        for rec in self.records:
            row = {"time": rec.time, "kind": rec.kind}
            row.update(rec.fields)
            rows.append(row)
        return rows

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def __repr__(self) -> str:
        return f"<Tracer records={len(self.records)} dropped={self.dropped}>"
