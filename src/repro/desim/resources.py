"""Capacity-constrained resources with queue statistics.

A :class:`Resource` models a service center: a memory port, a DRAM bank, a
network link, a processor issue slot.  Processes ``yield resource.request()``
to acquire one unit of capacity and call :meth:`Resource.release` when done.
Built-in time-weighted statistics track queue length and utilization, which
is the queuing-model output the paper's SES models were built to produce.

:class:`PriorityResource` serves waiters in ``(priority, FIFO)`` order,
used e.g. to let incident parcels preempt *queued* (not in-service) local
work when modeling parcel-handling disciplines.
"""

from __future__ import annotations

import heapq
import typing as _t
from collections import deque
from itertools import count

from .errors import SchedulingError
from .events import Event
from .stats import TimeWeighted, Tally

if _t.TYPE_CHECKING:  # pragma: no cover
    from .core import Simulator

__all__ = ["Request", "Resource", "PriorityResource"]


class Request(Event):
    """Pending or granted claim on one unit of a resource's capacity.

    Usable as a context manager inside a process::

        with port.request() as req:
            yield req
            yield sim.timeout(service_time)
        # released on exit

    The request succeeds (with itself as value) when capacity is granted.
    """

    __slots__ = ("resource", "priority", "enqueued_at", "granted_at")

    def __init__(self, resource: "Resource", priority: float = 0.0) -> None:
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        self.enqueued_at = resource.sim.now
        self.granted_at: _t.Optional[float] = None
        resource._admit(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        if self.granted_at is not None:
            self.resource.release(self)
        else:
            self.resource.cancel(self)

    def __repr__(self) -> str:
        state = "granted" if self.granted_at is not None else "waiting"
        return f"<Request on {self.resource.name!r} {state}>"


class Resource:
    """FIFO service center with integer capacity and usage statistics.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Number of simultaneous users (servers); must be >= 1.
    name:
        Label used in statistics and traces.

    Attributes
    ----------
    queue_length:
        :class:`TimeWeighted` number of waiting requests.
    busy_servers:
        :class:`TimeWeighted` number of servers in use (time average /
        capacity = utilization).
    wait_times:
        :class:`Tally` of queueing delays experienced by granted requests.
    """

    def __init__(
        self, sim: "Simulator", capacity: int = 1, name: str = "resource"
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = int(capacity)
        self.name = name
        self.users: _t.List[Request] = []
        self._waiting: _t.Deque[Request] = deque()
        self.queue_length = TimeWeighted(
            f"{name}.queue", 0.0, start_time=sim.now
        )
        self.busy_servers = TimeWeighted(
            f"{name}.busy", 0.0, start_time=sim.now
        )
        self.wait_times = Tally(f"{name}.wait")
        self.total_requests = 0

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of granted (in-service) requests."""
        return len(self.users)

    @property
    def queued(self) -> int:
        """Number of waiting requests."""
        return len(self._waiting)

    def utilization(self, now: _t.Optional[float] = None) -> float:
        """Time-averaged busy fraction of total capacity."""
        return self.busy_servers.time_average(now) / self.capacity

    # ------------------------------------------------------------------
    def request(self, priority: float = 0.0) -> Request:
        """Create (and possibly immediately grant) a capacity claim."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return ``request``'s unit of capacity and serve the next waiter."""
        if request.granted_at is None:
            raise SchedulingError(
                f"cannot release {request!r}: it was never granted"
            )
        try:
            self.users.remove(request)
        except ValueError:
            raise SchedulingError(
                f"{request!r} does not hold {self.name!r}"
            ) from None
        self.busy_servers.add(-1.0, self.sim.now)
        self._grant_waiters()

    def cancel(self, request: Request) -> None:
        """Withdraw a *waiting* request (no-op if already granted)."""
        if request.granted_at is not None:
            return
        try:
            self._waiting.remove(request)
        except ValueError:
            return
        self.queue_length.add(-1.0, self.sim.now)

    # -- internals ------------------------------------------------------
    def _admit(self, request: Request) -> None:
        self.total_requests += 1
        if len(self.users) < self.capacity and not self._waiting:
            self._grant(request)
        else:
            self._enqueue(request)
            self.queue_length.add(1.0, self.sim.now)

    def _enqueue(self, request: Request) -> None:
        self._waiting.append(request)

    def _pop_next(self) -> Request:
        return self._waiting.popleft()

    def _grant(self, request: Request) -> None:
        now = self.sim.now
        request.granted_at = now
        self.users.append(request)
        self.busy_servers.add(1.0, now)
        self.wait_times.record(now - request.enqueued_at)
        request.succeed(request)

    def _grant_waiters(self) -> None:
        while self._waiting and len(self.users) < self.capacity:
            nxt = self._pop_next()
            self.queue_length.add(-1.0, self.sim.now)
            self._grant(nxt)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"{self.count}/{self.capacity} busy, {self.queued} queued>"
        )


class PriorityResource(Resource):
    """Resource serving waiters in ascending ``priority`` then FIFO order."""

    def __init__(
        self, sim: "Simulator", capacity: int = 1, name: str = "resource"
    ) -> None:
        super().__init__(sim, capacity, name)
        self._heap: _t.List[_t.Tuple[float, int, Request]] = []
        self._seq = count()

    def _enqueue(self, request: Request) -> None:
        heapq.heappush(
            self._heap, (request.priority, next(self._seq), request)
        )
        # the deque is unused; keep `queued` consistent via the heap
        self._waiting.append(request)

    def _pop_next(self) -> Request:
        while True:
            _prio, _seq, request = heapq.heappop(self._heap)
            try:
                self._waiting.remove(request)
            except ValueError:
                continue  # was cancelled
            return request

    def cancel(self, request: Request) -> None:
        # Remove from the FIFO mirror only; the heap entry is skipped
        # lazily by `_pop_next`.
        super().cancel(request)
