"""Core event primitives for the discrete-event simulation engine.

An :class:`Event` is the unit of coordination in :mod:`repro.desim`: it can be
*triggered* (succeed or fail), carries a value, and runs callbacks when the
simulator processes it.  Processes (see :mod:`repro.desim.process`) suspend by
yielding events and are resumed through the callback mechanism.

The design follows the classic transaction-oriented DES structure used by
tools like SES/workbench (which the SC'04 paper used) and SimPy: a global
event heap ordered by ``(time, priority, insertion order)``.
"""

from __future__ import annotations

import typing as _t

from .errors import SchedulingError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import Simulator

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
]


class _Pending:
    """Sentinel for "event not yet triggered"; falsy and unique."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"

    def __bool__(self) -> bool:
        return False


#: Sentinel value stored in an event before it is triggered.
PENDING = _Pending()

#: Scheduling priority for control events (processed before normal events
#: that share the same timestamp).
URGENT = 0

#: Default scheduling priority.
NORMAL = 1


class Event:
    """A condition that may be triggered once, with a value or an error.

    Parameters
    ----------
    sim:
        The :class:`~repro.desim.core.Simulator` this event belongs to.

    Notes
    -----
    Lifecycle: *pending* -> *triggered* (via :meth:`succeed` / :meth:`fail`,
    which schedules the event) -> *processed* (the simulator pops it from the
    heap and runs its callbacks).  Each transition may happen only once.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Callables ``cb(event)`` invoked when the event is processed.
        #: ``None`` once processed.
        self.callbacks: _t.Optional[list] = []
        self._value: object = PENDING
        self._ok: _t.Optional[bool] = None
        self._defused = False

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the simulator has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> _t.Optional[bool]:
        """``True``/``False`` after success/failure, ``None`` while pending."""
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or exception, if it failed).

        Raises
        ------
        SchedulingError
            If the event has not been triggered yet.
        """
        if self._value is PENDING:
            raise SchedulingError(f"value of {self!r} is not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """Whether a failure was handled (prevents it surfacing in ``run``)."""
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled so ``run()`` does not re-raise."""
        self._defused = True

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``.

        The event is scheduled at the current simulation time and its
        callbacks run when the simulator processes it.  Returns ``self`` so
        that ``return event.succeed()`` chains are convenient.
        """
        if self._value is not PENDING:
            raise SchedulingError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        The exception is re-raised from :meth:`Simulator.run` unless some
        waiter defuses it (processes that receive it via ``throw`` defuse
        automatically).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not PENDING:
            raise SchedulingError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event (chaining helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(_t.cast(BaseException, event._value))

    # ------------------------------------------------------------------
    # callbacks
    # ------------------------------------------------------------------
    def add_callback(self, callback: _t.Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed.

        Raises
        ------
        SchedulingError
            If the event has already been processed (its callback list is
            gone); callers should check :attr:`processed` first.
        """
        if self.callbacks is None:
            raise SchedulingError(f"{self!r} has already been processed")
        self.callbacks.append(callback)

    def _process(self) -> None:
        """Run and clear the callback list (simulator-internal)."""
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:  # type: ignore[union-attr]
            callback(self)

    def __repr__(self) -> str:
        state = (
            "pending"
            if not self.triggered
            else ("ok" if self._ok else f"failed({self._value!r})")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay.

    Scheduling happens at construction time; the event succeeds with
    ``value`` at ``sim.now + delay``.
    """

    __slots__ = ("delay",)

    def __init__(
        self, sim: "Simulator", delay: float, value: object = None
    ) -> None:
        if delay < 0:
            raise SchedulingError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r} at {id(self):#x}>"


class Condition(Event):
    """An event that triggers when ``evaluate(events, count)`` says so.

    Used through the :class:`AllOf` / :class:`AnyOf` conveniences.  The
    condition's value is a dict mapping each *triggered* sub-event to its
    value, preserving construction order.

    A failing sub-event fails the whole condition immediately (the failure
    is propagated, and the sub-event is defused by the condition).
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(
        self,
        sim: "Simulator",
        evaluate: _t.Callable[[_t.Sequence[Event], int], bool],
        events: _t.Iterable[Event],
    ) -> None:
        super().__init__(sim)
        self._events: _t.Tuple[Event, ...] = tuple(events)
        self._evaluate = evaluate
        self._count = 0

        for event in self._events:
            if event.sim is not sim:
                raise SchedulingError(
                    "all events of a condition must share one simulator"
                )

        if not self._events:
            self.succeed({})
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.add_callback(self._check)

    def _collect_values(self) -> dict:
        return {e: e._value for e in self._events if e.triggered and e._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._ok:
            self._count += 1
            if self._evaluate(self._events, self._count):
                self.succeed(self._collect_values())
        else:
            event.defuse()
            self.fail(_t.cast(BaseException, event._value))

    @staticmethod
    def all_events(events: _t.Sequence[Event], count: int) -> bool:
        """Evaluator: every sub-event has triggered."""
        return count == len(events)

    @staticmethod
    def any_event(events: _t.Sequence[Event], count: int) -> bool:
        """Evaluator: at least one sub-event has triggered."""
        return count >= 1


class AllOf(Condition):
    """Triggers once *all* the given events have succeeded."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: _t.Iterable[Event]) -> None:
        super().__init__(sim, Condition.all_events, events)


class AnyOf(Condition):
    """Triggers once *any* of the given events has succeeded."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: _t.Iterable[Event]) -> None:
        super().__init__(sim, Condition.any_event, events)
