"""Timestamped trace replay and refresh (tREFI/tRFC) modeling.

Walks the two arrival regimes of ``repro.memsys`` — line-rate
saturation vs trace-driven timestamps — and shows the sustained-
bandwidth cost of DRAM refresh at per-rank and per-bank granularity.
See ``docs/trace-formats.md`` for the trace grammar and
``docs/architecture.md`` for how both replay engines stay bit-exact.

Run: ``PYTHONPATH=src python examples/timestamped_replay.py``
"""

from repro.memsys import (
    MemSysConfig,
    MemorySystem,
    format_trace,
    parse_trace,
    synthesize_trace,
)

N = 20_000
TREFI_NS, TRFC_NS = 3900.0, 350.0  # HBM2-class refresh timings


def gbit(stats) -> float:
    return stats.sustained_bits_per_sec / 1e9


def main() -> None:
    config = MemSysConfig(n_channels=1)

    # ------------------------------------------------------------------
    # 1. line-rate vs timestamped arrivals
    # ------------------------------------------------------------------
    line_rate = MemorySystem(config).replay(
        synthesize_trace("sequential", N, config, packed=True)
    )
    spacing = 4 * config.timing.page_access_ns  # ~25% offered load
    paced = MemorySystem(config).replay(
        synthesize_trace(
            "sequential", N, config, packed=True,
            interarrival_ns=spacing,
        )
    )
    offered = config.timing.page_bits / (spacing * 1e-9) / 1e9
    print(f"line-rate sustained bandwidth:   {gbit(line_rate):6.1f} Gbit/s")
    print(
        f"timestamped ({spacing:g} ns spacing): {gbit(paced):6.1f} "
        f"Gbit/s (offered load {offered:.1f} Gbit/s)"
    )

    # the text format carries the timestamps losslessly
    tiny = synthesize_trace(
        "sequential", 3, config, interarrival_ns=spacing
    )
    text = format_trace(tiny)
    print("\ntimestamped trace lines:")
    for line in text.splitlines():
        print(f"  {line}")
    reparsed = parse_trace(text)
    assert all(
        a.same_payload(b) for a, b in zip(tiny, reparsed)
    ), "round trip must be lossless"

    # ------------------------------------------------------------------
    # 2. refresh overhead: per-rank blackout vs per-bank stagger
    # ------------------------------------------------------------------
    spread = MemSysConfig(n_channels=1, scheme="bank-interleaved")
    ideal = MemorySystem(spread).replay(
        synthesize_trace("random", N, spread, seed=0, packed=True)
    )
    print(
        f"\nrefresh on random traffic (tREFI={TREFI_NS:g} ns, "
        f"tRFC={TRFC_NS:g} ns, blackout "
        f"{100 * TRFC_NS / TREFI_NS:.1f}%):"
    )
    print(f"  no refresh: {gbit(ideal):6.2f} Gbit/s")
    for granularity in ("per-rank", "per-bank"):
        refreshed = MemSysConfig(
            n_channels=1,
            scheme="bank-interleaved",
            trefi_ns=TREFI_NS,
            trfc_ns=TRFC_NS,
            refresh_granularity=granularity,
        )
        stats = MemorySystem(refreshed).replay(
            synthesize_trace("random", N, refreshed, seed=0, packed=True)
        )
        overhead = 100 * (1 - gbit(stats) / gbit(ideal))
        print(
            f"  {granularity:9s}: {gbit(stats):6.2f} Gbit/s "
            f"({overhead:.2f}% overhead)"
        )
    print(
        "\nper-rank refresh stalls the whole channel every tREFI; "
        "staggered per-bank refresh lets the scheduler work around "
        "the refreshing bank."
    )


if __name__ == "__main__":
    main()
