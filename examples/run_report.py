"""The unified run report: one trace, every observability surface.

Replays one timestamped trace twice —

1. single-process through the fast path, and
2. on the sharded farm (`repro.farm`) under a chaos plan that kills a
   worker's first attempt —

derives the windowed time series (`repro.telemetry/timeseries-v2`)
from both recorded replays, shows the documents are **identical**
(every series is a deterministic reduction of arrays the engines
already keep bit-identical — only the `engine` label differs), walks
the farm supervisor's typed event log, and renders the whole run as
the `repro-pim report` text report + `repro.telemetry/report-v2`
JSON.  See ``docs/observability.md`` for the schemas.

Run: ``PYTHONPATH=src python examples/run_report.py``
"""

import json

from repro.farm import KILL, FarmConfig, FaultPlan, replay_farm
from repro.memsys import MemSysConfig, MemorySystem, synthesize_trace
from repro.telemetry import (
    MetricsRegistry,
    ReplayTelemetry,
    build_report,
    build_timeseries,
    farm_metrics,
    memsys_metrics,
    render_report,
    validate_timeseries,
)

N = 20_000


def main() -> None:
    # channel-interleaved so the footprint spans all 4 channels —
    # the farm shards by channel, so this is the shardable regime
    config = MemSysConfig(n_channels=4, scheme="channel-interleaved")
    trace = synthesize_trace(
        "random", N, config, seed=0, packed=True,
        interarrival_ns=40.0, interarrival="poisson",
    )

    # ------------------------------------------------------------------
    # 1. single-process replay, time series derived post-replay
    # ------------------------------------------------------------------
    single = ReplayTelemetry()
    stats = MemorySystem(config).replay(
        trace, engine="fast", telemetry=single
    )
    series_single = build_timeseries(single)
    assert validate_timeseries(series_single) == []
    print(
        f"single-process replay: {stats.n_requests} requests, "
        f"{series_single['n_windows']} windows x "
        f"{series_single['window_ns']:.0f} ns"
    )

    # ------------------------------------------------------------------
    # 2. farm replay under chaos: kill shard 0's first attempt
    # ------------------------------------------------------------------
    farmed = ReplayTelemetry()
    result = replay_farm(
        trace,
        config,
        FarmConfig(
            mode="inprocess", engine="fast",
            backoff_base_s=0.0, backoff_cap_s=0.0,
        ),
        telemetry=farmed,
        fault_plan=FaultPlan.always(KILL, [0], attempts=1),
    )
    series_farm = build_timeseries(farmed)
    assert validate_timeseries(series_farm) == []

    # every series is a pure reduction of the bit-identical recorder
    # arrays, so the documents agree to the last bit — only the
    # engine label records who served the replay
    a = {k: v for k, v in series_single.items() if k != "engine"}
    b = {k: v for k, v in series_farm.items() if k != "engine"}
    print(
        "time series identical across single-process and farm: "
        f"{json.dumps(a) == json.dumps(b)}"
    )

    # ------------------------------------------------------------------
    # 3. the supervisor's typed event log narrates the chaos
    # ------------------------------------------------------------------
    counts = result.events.counts()
    print(f"farm event counts: {counts}")
    kills = [
        event
        for event in result.events.for_shard(0)
        if event.kind == "chaos-kill"
    ]
    print(
        f"chaos-kill events on shard 0: {len(kills)} "
        f"(attempt {kills[0].attempt})"
    )

    # ------------------------------------------------------------------
    # 4. one unified run report from the farm replay
    # ------------------------------------------------------------------
    registry = MetricsRegistry(source="examples/run_report.py")
    memsys_metrics(registry=registry, stats=result.stats)
    farm_metrics(result.report, registry)
    farmed.metrics_into(registry)
    document = build_report(
        farmed,
        registry=registry,
        timeseries=series_farm,
        farm_report=result.report,
        source="examples/run_report.py",
    )
    print()
    print(render_report(document))


if __name__ == "__main__":
    main()
