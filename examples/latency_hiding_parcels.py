#!/usr/bin/env python3
"""How many parcel contexts hide a given network latency?

Scenario: a PIM array's interconnect latency is fixed by packaging and
scale (tens to thousands of cycles).  The application exposes some
degree of fine-grain parallelism (parcels per node).  This example
answers the Fig. 11/12 question quantitatively:

* sweep parallelism at several latencies with the paired DES;
* compare against the Saavedra-Barrera closed form the paper cites [27];
* report the saturation parallelism P_sat per latency.

Run:  python examples/latency_hiding_parcels.py
"""

from repro import ParcelParams
from repro.core.parcels import (
    compare_systems,
    multithreading_efficiency,
    saturation_parallelism,
)
from repro.viz import format_table, line_plot


def main() -> None:
    base = ParcelParams(n_nodes=8, remote_fraction=0.2)
    horizon = 15_000.0
    latencies = (30.0, 300.0, 3000.0)
    parallelism = (1, 2, 4, 8, 16, 32, 64)

    # effective run length between remote requests, for the closed form
    r = base.effective_remote_fraction
    accesses_per_txn = 1.0 / r
    compute = accesses_per_txn * (1 - base.ls_mix) / base.ls_mix
    run_cycles = (
        compute
        + (accesses_per_txn - 1) * base.memory_cycles
        + base.send_overhead_cycles
        + base.receive_overhead_cycles
    )

    rows = []
    curves = {}
    for latency in latencies:
        params_l = base.with_(latency_cycles=latency)
        ratios = []
        for p in parallelism:
            cmp = compare_systems(
                params_l.with_(parallelism=p), horizon
            )
            ratios.append(cmp.ratio)
            rows.append(
                {
                    "latency": latency,
                    "parallelism": p,
                    "work_ratio": cmp.ratio,
                    "test_idle": cmp.test.idle_fraction,
                    "control_idle": cmp.control.idle_fraction,
                    "model_efficiency": float(
                        multithreading_efficiency(
                            p,
                            run_cycles,
                            2 * latency + base.memory_cycles,
                            base.context_switch_cycles,
                        )
                    ),
                }
            )
        curves[f"L={latency:.0f}"] = ratios

    print("parcels vs blocking message passing (paired DES)")
    print("=" * 64)
    print(format_table(rows))

    print()
    print(
        line_plot(
            list(parallelism),
            curves,
            title="work ratio vs parallelism (curves: one-way latency)",
            xlabel="parcel contexts per node",
            ylabel="ratio",
            logx=True,
        )
    )

    print("\nsaturation parallelism (closed form):")
    for latency in latencies:
        p_sat = float(
            saturation_parallelism(
                run_cycles,
                2 * latency + base.memory_cycles,
                base.context_switch_cycles,
            )
        )
        print(
            f"  L={latency:6.0f} cycles -> P_sat = {p_sat:5.1f} contexts"
        )
    print(
        "\nReading: beyond P_sat the node is busy and extra parallelism"
        "\nbuys nothing; below it, the idle gap is exactly what the"
        "\ncontrol system wastes waiting (Fig. 12's contrast)."
    )


if __name__ == "__main__":
    main()
