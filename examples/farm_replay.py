"""Fault-tolerant sharded replay: exact results under injected chaos.

Replays one timestamped trace three ways —

1. single-process (the reference),
2. on the sharded farm (`repro.farm`), and
3. on the farm under a deterministic chaos plan that kills, hangs,
   and corrupts workers —

and shows all three produce **bit-identical** statistics: the farm's
retries, integrity checks, and graceful degradation absorb every
fault, and the ledger (`FarmReport`) accounts for each one.  See
``docs/robustness.md`` for the failure taxonomy and
``docs/architecture.md`` for why the channel merge is exact.

Run: ``PYTHONPATH=src python examples/farm_replay.py``
"""

import dataclasses

from repro.farm import (
    CORRUPT,
    HANG,
    KILL,
    Fault,
    FaultPlan,
    FarmConfig,
    replay_farm,
)
from repro.memsys import MemSysConfig, MemorySystem, synthesize_trace

N = 20_000


def bitwise_equal(a, b) -> bool:
    # repr-level equality: nan == nan, every float to the last bit
    return repr(dataclasses.asdict(a)) == repr(dataclasses.asdict(b))


def main() -> None:
    # channel-interleaved so the footprint spans all 4 channels —
    # the farm shards by channel, so this is the shardable regime
    config = MemSysConfig(n_channels=4, scheme="channel-interleaved")
    trace = synthesize_trace(
        "random", N, config, seed=0, packed=True,
        interarrival_ns=40.0, interarrival="poisson",
    )

    # ------------------------------------------------------------------
    # 1. the single-process reference
    # ------------------------------------------------------------------
    single = MemorySystem(config).replay(trace, engine="fast")
    print(f"single-process replay: {single.n_requests} requests, "
          f"makespan {single.makespan_ns:,.0f} ns")

    # ------------------------------------------------------------------
    # 2. the sharded farm (one worker per channel shard)
    # ------------------------------------------------------------------
    farm = FarmConfig(mode="auto", engine="fast")
    result = replay_farm(trace, config, farm)
    report = result.report
    print(f"farm replay: mode={report.mode} shards={report.n_shards} "
          f"attempts={report.attempts}")
    print("farm stats bit-identical to single-process: "
          f"{bitwise_equal(single, result.stats)}")

    # ------------------------------------------------------------------
    # 3. the same replay under injected chaos
    # ------------------------------------------------------------------
    # shard 0's first try dies, shard 1's first result is corrupted in
    # transit, shard 2 wedges and goes silent — all on attempt 0, so
    # one retry each makes the farm whole
    plan = FaultPlan({
        (0, 0): Fault(KILL),
        (1, 0): Fault(CORRUPT),
        (2, 0): Fault(HANG),
    })
    chaos_farm = FarmConfig(
        mode="inprocess", engine="fast",
        backoff_base_s=0.0, backoff_cap_s=0.0,
    )
    chaos = replay_farm(trace, config, chaos_farm, fault_plan=plan)
    ledger = chaos.report
    print("\nchaos plan: kill shard 0, corrupt shard 1, hang shard 2")
    print(f"fault ledger: crashes={ledger.crashes} "
          f"integrity_failures={ledger.integrity_failures} "
          f"timeouts={ledger.timeouts} retries={ledger.retries} "
          f"degraded={ledger.degraded_shards}")
    for error in ledger.errors:
        print(f"  absorbed: {error}")
    exact = bitwise_equal(single, chaos.stats)
    print(f"stats under chaos bit-identical to single-process: {exact}")
    assert exact, "the farm must never return a wrong answer"

    # ------------------------------------------------------------------
    # 4. graceful degradation: an unshardable trace still replays
    # ------------------------------------------------------------------
    line_rate = synthesize_trace("random", N, config, seed=0, packed=True)
    fallback = replay_farm(line_rate, config, farm)
    print(f"\nline-rate trace: fell back to single-process = "
          f"{fallback.report.fell_back_to_single}")
    print(f"reason: {fallback.report.fallback_reason}")


if __name__ == "__main__":
    main()
