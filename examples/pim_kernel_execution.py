"""Executing a PIM kernel inside the banks, step by step.

This walkthrough builds the machinery of :mod:`repro.pimexec` by hand —
no prebuilt kernel — so every moving part is visible:

1. lay a vector out across the banks, one page per bank per *slot*;
2. download a three-command microkernel into each channel's CRF;
3. run it: every dynamic instruction is one all-bank column access
   through the banked memory system, so the kernel's execution time
   pays real activations and page transfers;
4. read back the per-bank GRF accumulators and compare, bit for bit,
   against NumPy;
5. replay the host-only twin of the same computation and compare
   execution times — the paper's "compute where the data lives"
   argument, measured rather than derived.

Run with ``PYTHONPATH=src python examples/pim_kernel_execution.py``.
"""

import numpy as np

from repro.memsys import MemSysConfig, MemorySystem, MemRequest, Op
from repro.pimexec import (
    Operand,
    PimCommand,
    PimExecMachine,
    PimOpcode,
)

# ----------------------------------------------------------------------
# 1. a machine and a data layout
# ----------------------------------------------------------------------
config = MemSysConfig()  # 2 channels x 4 banks, paper timing
machine = PimExecMachine(config)
lanes = machine.lanes          # 256-bit page = 16 16-bit words
units = machine.total_units    # one execution unit per bank
pages_per_row = config.timing.pages_per_row

N = 2048
rng = np.random.default_rng(42)
x = rng.standard_normal(N)
pages = x.reshape(-1, units, lanes)  # [slot][unit][lane]
slots = pages.shape[0]

print(f"machine: {machine!r}")
print(
    f"layout:  {N} values -> {slots} slots x {units} banks x "
    f"{lanes} lanes"
)

for s in range(slots):
    row, col = divmod(s, pages_per_row)
    for u in range(units):
        ch, bank = divmod(u, config.banks_per_channel)
        machine.write_bank(ch, bank, row, col, pages[s, u])
machine.reset_requests()  # data staging is not part of kernel time

# ----------------------------------------------------------------------
# 2. the microkernel: GRF_B0 += page, looped over all slots
# ----------------------------------------------------------------------
kernel = [
    PimCommand(
        PimOpcode.ADD,
        dst=Operand.grf_b(0),
        src0=Operand.bank(),      # the page of the triggering access
        src1=Operand.grf_b(0),
    ),
    PimCommand(PimOpcode.JUMP, target=0, count=slots - 1),
    PimCommand(PimOpcode.EXIT),
]
machine.load_kernel(kernel)  # broadcast into every channel's CRF

# ----------------------------------------------------------------------
# 3. run: one all-bank column access per dynamic instruction
# ----------------------------------------------------------------------
walk = [divmod(s, pages_per_row) for s in range(slots)]
executed = machine.run_kernel(walk)
for u in range(units):
    ch, bank = divmod(u, config.banks_per_channel)
    machine.read_grf(ch, bank, "grf_b", 0)
pim = machine.replay()
print(
    f"kernel:  {executed} all-bank instructions -> "
    f"{pim.n_requests} requests "
    f"(pim={pim.n_pim} broadcast={pim.n_broadcast})"
)

# ----------------------------------------------------------------------
# 4. bit-exact check against NumPy
# ----------------------------------------------------------------------
reference = np.zeros((units, lanes))
for s in range(slots):
    reference = pages[s] + reference  # the ADD's operand order
bit_exact = all(
    np.array_equal(
        machine.unit(*divmod(u, config.banks_per_channel)).grf_b[0],
        reference[u],
    )
    for u in range(units)
)
total = float(reference.sum())
print(f"result:  sum = {total:.6f}, numpy says {x.sum():.6f}")
print(f"bank GRF contents bit-exact vs NumPy: {bit_exact}")
assert bit_exact

# ----------------------------------------------------------------------
# 5. the host-only twin: one page per request over the host interface
# ----------------------------------------------------------------------
host_trace = []
for s in range(slots):
    row, col = divmod(s, pages_per_row)
    for u in range(units):
        ch, bank = divmod(u, config.banks_per_channel)
        host_trace.append(
            MemRequest(Op.READ, machine.encode(ch, bank, row, col))
        )
host = MemorySystem(config).replay(host_trace)
print(
    f"timing:  host-only {host.makespan_ns:.0f} ns vs "
    f"PIM {pim.makespan_ns:.0f} ns -> "
    f"speedup {host.makespan_ns / pim.makespan_ns:.2f}x"
)
