"""Per-request latency profiling with ``repro.telemetry``.

Replays one random trace through both replay engines with a
:class:`~repro.telemetry.ReplayTelemetry` attached, proves the
recorded per-request instants bit-identical between engines, prints
the exact queue-wait/service percentile table and the engines'
self-profiling phase timers, and writes a Chrome-trace command
timeline that https://ui.perfetto.dev opens directly.  See
``docs/observability.md`` for the schemas.

Run: ``PYTHONPATH=src python examples/latency_profile.py``
"""

import json
import tempfile
import pathlib

import numpy as np

from repro.memsys import MemSysConfig, MemorySystem, synthesize_trace
from repro.telemetry import (
    MetricsRegistry,
    ReplayTelemetry,
    memsys_metrics,
    validate_timeline,
)

N = 20_000


def replay_with_telemetry(config, trace, engine):
    telemetry = ReplayTelemetry()
    stats = MemorySystem(config).replay(
        trace, engine=engine, telemetry=telemetry
    )
    return stats, telemetry


def main() -> None:
    config = MemSysConfig()
    trace = synthesize_trace("random", N, config, seed=0)

    # ------------------------------------------------------------------
    # 1. the same trace through both engines, instrumented
    # ------------------------------------------------------------------
    stats, fast = replay_with_telemetry(config, trace, "fast")
    _, event = replay_with_telemetry(config, trace, "event")
    print(f"replayed {N} random requests")
    print(f"  fast path served by: {fast.engine}")
    print(f"  event engine served by: {event.engine}")

    identical = all(
        np.array_equal(
            getattr(fast.recorder, field), getattr(event.recorder, field)
        )
        for field in ("arrival", "start_service", "finish")
    )
    print(f"per-request instants bit-identical across engines: {identical}")
    assert identical, "the cross-engine guarantee must hold"

    # ------------------------------------------------------------------
    # 2. exact latency percentiles (nearest-rank order statistics)
    # ------------------------------------------------------------------
    print("\nlatency percentiles (ns, exact):")
    header = f"  {'duration':18s}{'p50':>8s}{'p95':>8s}{'p99':>8s}{'max':>8s}"
    print(header)
    for name, summary in fast.percentiles().items():
        print(
            f"  {name:18s}"
            f"{summary['p50']:8.1f}{summary['p95']:8.1f}"
            f"{summary['p99']:8.1f}{summary['max']:8.1f}"
        )

    # ------------------------------------------------------------------
    # 3. where the simulator itself spent wall-clock time
    # ------------------------------------------------------------------
    print("\nreplay-engine phase profile (wall-clock):")
    for phase, seconds in fast.profiler.phases.items():
        print(f"  {phase:14s} {1e3 * seconds:8.3f} ms")

    # ------------------------------------------------------------------
    # 4. one metrics snapshot holding everything
    # ------------------------------------------------------------------
    registry = MetricsRegistry(source="examples/latency_profile.py")
    memsys_metrics(stats, registry, scheme=config.scheme)
    fast.metrics_into(registry, scheme=config.scheme)
    snapshot = registry.snapshot()
    print(
        f"\nmetrics snapshot ({snapshot['schema']}): "
        f"{len(registry)} entries "
        f"({len(snapshot['counters'])} counters, "
        f"{len(snapshot['gauges'])} gauges, "
        f"{len(snapshot['histograms'])} histograms)"
    )

    # ------------------------------------------------------------------
    # 5. the command timeline (open in Perfetto / chrome://tracing)
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = fast.write_timeline(pathlib.Path(tmp) / "timeline.json")
        document = json.loads(path.read_text())
        problems = validate_timeline(document)
        spans = sum(
            1 for e in document["traceEvents"] if e["ph"] == "X"
        )
        print(
            f"command timeline: {spans} spans across "
            f"{config.n_channels} channel processes "
            f"(schema valid: {not problems})"
        )
        assert not problems, problems


if __name__ == "__main__":
    main()
