"""A transformer layer on the PIM machine, in IEEE binary16.

This walkthrough exercises the :mod:`repro.nn` stack end to end:

1. run an attention layer (``softmax(QK^T/sqrt(d)) @ V`` per head) on
   the per-bank execution units under ``dtype="fp16"`` and verify the
   bank state *bit-exactly* against a NumPy binary16 reference;
2. quantify what binary16 rounding cost: the same layer under the
   idealized ``fp64`` model differs by a small — but nonzero — error;
3. re-run in *bank-group* mode (one execution unit per even/odd bank
   pair): identical results, measurably more all-bank column accesses
   — the modeled timing cost of half-bank execution;
4. generate a full transformer-layer workload trace (LayerNorm, QKV,
   attention, FFN) with bursty Poisson arrivals in the HBM-PIMulator
   program dialect, and replay it through *both* memory-system
   engines, which must agree bit-for-bit.

Run with ``PYTHONPATH=src python examples/transformer_layer.py``.
"""

import numpy as np

from repro.memsys import MemorySystem, MemSysConfig
from repro.nn import (
    TransformerLayerSpec,
    build_nn_kernel,
    run_nn_kernel,
    transformer_layer_program,
)

# ----------------------------------------------------------------------
# 1. an attention layer in binary16, bit-exact
# ----------------------------------------------------------------------
kernel = build_nn_kernel(
    "attention", dtype="fp16", d_head=4, n_heads=2, seed=7
)
comparison = run_nn_kernel(kernel)
print(f"kernel:   {kernel.description}")
print(
    f"output:   {comparison.output.shape} in "
    f"{comparison.output.dtype}"
)
print(f"fp16 bank state bit-exact vs NumPy binary16: {comparison.correct}")
assert comparison.correct

# ----------------------------------------------------------------------
# 2. what did binary16 cost? compare against the fp64 model
# ----------------------------------------------------------------------
ideal = run_nn_kernel(
    build_nn_kernel("attention", dtype="fp64", d_head=4, n_heads=2, seed=7)
)
error = np.abs(
    comparison.output.astype(np.float64) - ideal.output
).max()
print(f"max fp16-vs-fp64 error: {error:.3e} (nonzero: rounding is real)")
assert 0.0 < error < 0.05

# ----------------------------------------------------------------------
# 3. bank-group (half-bank) execution: same answer, more accesses
# ----------------------------------------------------------------------
per_bank = run_nn_kernel(
    build_nn_kernel("gemm", dtype="fp16", m=128, k=8, n=8, seed=7)
)
grouped = run_nn_kernel(
    build_nn_kernel(
        "gemm", dtype="fp16", m=128, k=8, n=8, seed=7, bank_groups=True
    )
)
assert np.array_equal(per_bank.output, grouped.output)
print(
    f"bank-group GEMM: bit-identical output, "
    f"{per_bank.pim.n_pim} -> {grouped.pim.n_pim} all-bank commands, "
    f"{per_bank.pim.makespan_ns:.0f} -> "
    f"{grouped.pim.makespan_ns:.0f} ns"
)

# ----------------------------------------------------------------------
# 4. a full-layer workload trace, replayed through both engines
# ----------------------------------------------------------------------
spec = TransformerLayerSpec(d_model=16, n_heads=2, seq_len=16, d_ff=32)
config = MemSysConfig()
program = transformer_layer_program(
    spec, config, interarrival_ns=4.0, interarrival="poisson", seed=7
)
print(
    f"trace:    {len(program)} records for d_model={spec.d_model} "
    f"heads={spec.n_heads} seq={spec.seq_len} d_ff={spec.ff_width} "
    f"(poisson arrivals)"
)
event = MemorySystem(config).replay(
    program.to_requests(config), engine="event"
)
fast = MemorySystem(config).replay(
    program.to_requests(config), engine="fast"
)
assert event.makespan_ns == fast.makespan_ns
assert event.summary() == fast.summary()
print(
    f"replay:   event and fast engines agree bit-for-bit "
    f"(makespan {event.makespan_ns:.1f} ns, "
    f"row-hit rate {event.row_hit_rate:.3f})"
)
