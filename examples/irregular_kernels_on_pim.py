#!/usr/bin/env python3
"""Run real irregular kernels on the functional PIM system.

The statistical studies assume workload parameters; this example runs
actual code — assembled for the PIM-Lite-style ISA — on a multi-node
functional simulator with parcels, and *measures* those parameters:

* GUPS-style scattered updates (fetch-add parcels),
* a pointer chase across distributed memory,
* a fork/join parallel reduction using ``invoke`` parcels
  ("move the work to the data", Fig. 9).

Run:  python examples/irregular_kernels_on_pim.py
"""

from repro.isa import (
    IsaParams,
    PimSystem,
    gups_program,
    parallel_sum_program,
    pointer_chase_program,
    simd_vector_sum_program,
    vector_sum_program,
)
from repro.viz import format_table


def main() -> None:
    kernels = [
        vector_sum_program(count=64),
        simd_vector_sum_program(count=64),  # same data, wide words
        pointer_chase_program(chain_length=48),
        parallel_sum_program(count_per_worker=32, n_workers=4),
        # table straddles the node-0/node-1 boundary so updates mix
        # local and remote fetch-adds
        gups_program(updates=128, table_base=448, table_words_log2=7),
    ]
    rows = []
    for latency in (20.0, 200.0):
        for kernel in kernels:
            system = PimSystem(
                IsaParams(
                    n_nodes=4,
                    words_per_node=512,
                    latency_cycles=latency,
                )
            )
            kernel.launch(system)
            result = system.run()
            assert kernel.verify(system), kernel.name
            rows.append(
                {
                    "kernel": kernel.name,
                    "latency": latency,
                    "cycles": result.cycles,
                    "instructions": result.instructions,
                    "mem_mix": result.memory_mix,
                    "remote_frac": result.remote_access_fraction,
                    "parcels": result.parcels_sent,
                    "threads": result.threads_completed,
                }
            )

    print("functional PIM runs (4 nodes, verified results)")
    print("=" * 72)
    print(format_table(rows))

    print(
        "\nReading:"
        "\n * mem_mix lands near Table 1's 0.30 for the irregular"
        " kernels — the assumed instruction mix is realistic;"
        "\n * remote_frac is the §4 study's 'degree of remote access',"
        " measured instead of assumed;"
        "\n * the pointer chase's cycle count scales with latency (a"
        " dependence chain cannot be hidden), while parallel_sum's"
        " invoke-at-the-owner parcels keep its slowdown modest — the"
        " latency-hiding argument, demonstrated in executable form;"
        "\n * simd_vector_sum finishes ~3.6x faster than vector_sum on"
        " identical data — one 256-bit row-buffer access per 4 words,"
        " the §2.1 'hidden bandwidth' reclaimed at the ISA level."
    )


if __name__ == "__main__":
    main()
