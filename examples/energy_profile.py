"""Reading a power profile: per-command energy accounting end to end.

The paper's background argues PIM's win is as much about *energy* as
performance.  This walkthrough makes that claim observable on two
replays:

1. a **host stream** (random READ/WRITE traffic) — replayed through
   both the event engine and the fast path to show the
   `repro.telemetry/energy-v1` documents are **bit-identical across
   engines** (every number is a post-replay reduction of recorder
   arrays the engines already keep bit-identical);
2. a **PIM kernel stream** (`vector-sum`, all-bank lockstep) — whose
   pJ/bit sits well below the host stream's, because each all-bank
   command moves `banks x` the bits at in-bank energy.

Along the way it prints the per-class energy breakdown, the windowed
power profile, and the figures of merit (pJ/bit, perf-per-watt) that
`benchmarks/bench_*.py` track in every record.  See
``docs/observability.md`` for the schema and the coefficient table.

Run: ``PYTHONPATH=src python examples/energy_profile.py``
"""

import json

from repro.memsys import MemSysConfig, MemorySystem, synthesize_trace
from repro.pimexec import PimExecMachine, build_kernel
from repro.telemetry import (
    ENERGY_CLASSES,
    ReplayTelemetry,
    build_energy,
    validate_energy,
)

N = 20_000


def profile(telemetry, n_windows=12):
    """Build + validate one energy document on a coarse grid."""
    document = build_energy(telemetry, n_windows=n_windows)
    assert validate_energy(document) == []
    return document


def print_breakdown(document):
    total = document["total_pj"]
    for name in ENERGY_CLASSES:
        pj = document["breakdown_pj"][name]
        bar = "#" * int(round(40 * pj / total))
        print(f"  {name:<11} {pj:>14.1f} pJ  {bar}")


def print_power_profile(document):
    peak = max(document["series"]["power_w"])
    for start, watts in zip(
        document["t_start_ns"], document["series"]["power_w"]
    ):
        bar = "#" * int(round(40 * watts / peak)) if peak else ""
        print(f"  t={start:>10.0f} ns  {watts:>8.3f} W  {bar}")


def main() -> None:
    # ------------------------------------------------------------------
    # 1. host stream: bit-identical energy across engines
    # ------------------------------------------------------------------
    config = MemSysConfig(n_channels=2, scheme="channel-interleaved")
    trace = synthesize_trace(
        "random", N, config, seed=0, packed=True,
        write_fraction=0.25,
        interarrival_ns=6.0, interarrival="poisson",
    )
    documents = {}
    for engine in ("event", "fast"):
        telemetry = ReplayTelemetry()
        MemorySystem(config).replay(
            trace, engine=engine, telemetry=telemetry
        )
        documents[engine] = profile(telemetry)
    a, b = (
        {k: v for k, v in documents[e].items() if k != "engine"}
        for e in ("event", "fast")
    )
    print(
        "energy documents bit-identical across engines: "
        f"{json.dumps(a) == json.dumps(b)}"
    )
    host = documents["fast"]
    print(
        f"host stream: {host['n_requests']} requests, "
        f"{host['total_pj']:.0f} pJ over {host['makespan_ns']:.0f} ns"
    )
    print("host energy breakdown:")
    print_breakdown(host)
    print("host power profile:")
    print_power_profile(host)

    # ------------------------------------------------------------------
    # 2. PIM kernel stream: the pJ/bit argument
    # ------------------------------------------------------------------
    kernel = build_kernel("vector-sum", n=65_536)
    machine = PimExecMachine(kernel.config)
    kernel.setup(machine)
    machine.reset_requests()
    kernel.execute(machine)
    telemetry = ReplayTelemetry()
    result = machine.replay(telemetry=telemetry)
    assert kernel.check(machine)
    pim = profile(telemetry)
    print(
        f"pim stream: {pim['n_requests']} commands on the "
        f"{result.engine} engine, {pim['total_pj']:.0f} pJ"
    )
    print("pim energy breakdown:")
    print_breakdown(pim)

    # ------------------------------------------------------------------
    # 3. figures of merit
    # ------------------------------------------------------------------
    print(f"host pJ/bit: {host['pj_per_bit']:.3f}")
    print(f"pim  pJ/bit: {pim['pj_per_bit']:.3f}")
    print(
        "pim moves bits cheaper than the host stream: "
        f"{pim['pj_per_bit'] < host['pj_per_bit']}"
    )
    print(
        f"host perf-per-watt: "
        f"{host['requests_per_s_per_w']:.3e} requests/s/W"
    )
    print(
        f"pim  perf-per-watt: "
        f"{pim['requests_per_s_per_w']:.3e} commands/s/W"
    )


if __name__ == "__main__":
    main()
