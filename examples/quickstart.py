#!/usr/bin/env python3
"""Quickstart: the paper's two headline results in ~40 lines.

1. The HWP/LWP partitioning model (§3): how much faster is a host whose
   memory is populated with PIM nodes, and what is the break-even node
   count NB?
2. The parcel latency-hiding study (§4): how much more work does a
   split-transaction PIM array complete than blocking message passing?

Run:  python examples/quickstart.py
"""

from repro import (
    ParcelParams,
    Table1Params,
    nb_parameter,
    performance_gain,
    simulate_hybrid,
    time_relative,
)
from repro.core.hwlw import HwlwSimConfig
from repro.core.parcels import compare_systems


def main() -> None:
    # --- Study 1: heavyweight host + lightweight PIM array --------------
    params = Table1Params()  # exactly the paper's Table 1
    print("Table 1 parameters:", params.to_dict())
    print(f"\nBreak-even node count NB = {nb_parameter(params)}")
    print("  -> with more than ~4 PIM nodes, offloading the no-reuse")
    print("     fraction of the workload *always* wins, whatever %WL is.")

    for f in (0.2, 0.5, 1.0):
        gain = float(performance_gain(f, 64, params))
        t_rel = float(time_relative(f, 64, params))
        print(
            f"  %WL={f:.0%}: gain over all-host control = {gain:7.1f}x, "
            f"normalized time = {t_rel:.3f}"
        )

    # the queuing simulation agrees with the closed form
    sim = simulate_hybrid(
        params, lwp_fraction=0.5, n_nodes=8,
        config=HwlwSimConfig(stochastic=True, chunk_ops=1_000_000),
    )
    print(
        f"\nDES simulation at %WL=50%, N=8: {sim.completion_ns:.4g} ns "
        f"(analytic: {float(time_relative(0.5, 8, params)) * 4e8:.4g} ns "
        "normalized base 4e8)"
    )

    # --- Study 2: parcels vs blocking message passing -------------------
    parcels = ParcelParams(
        n_nodes=8, parallelism=64, remote_fraction=0.5,
        latency_cycles=1000.0,
    )
    cmp = compare_systems(parcels, horizon_cycles=20_000.0)
    print(
        f"\nParcels vs message passing (P=64, 50% remote, L=1000 cycles):"
        f"\n  work ratio          = {cmp.ratio:.1f}x"
        f"\n  test-system idle    = {cmp.test.idle_fraction:.1%}"
        f"\n  control-system idle = {cmp.control.idle_fraction:.1%}"
    )
    print("\n(paper: 'sometimes exceeding an order of magnitude' and")
    print(" 'idle time drops virtually to zero'.)")


if __name__ == "__main__":
    main()
