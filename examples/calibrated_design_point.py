#!/usr/bin/env python3
"""From workload traces to a calibrated PIM design point.

The paper sweeps its workload parameters because "it may be difficult to
calibrate these parameters for specific design points" (§5.1).  This
example does the calibration for a concrete application mix:

1. profile five kernel archetypes (reuse distances + trace-driven cache
   simulation);
2. derive %WL, Pmiss, mix, and the remote-access fraction;
3. place the calibrated application on the Fig. 7 design-space map and
   report the recommended PIM array size.

Run:  python examples/calibrated_design_point.py
"""

import numpy as np

from repro.core.hwlw import nb_parameter, performance_gain, time_relative
from repro.viz import format_table, line_plot
from repro.workloads import calibrate, standard_kernels


def main() -> None:
    print("calibrating from kernel traces ...")
    result = calibrate(standard_kernels(accesses=8_000))

    print()
    print(format_table(result.to_rows()))
    print(
        f"\nderived parameters: %WL={result.lwp_fraction:.2f}  "
        f"Pmiss={result.hwp_miss_rate:.3f}  "
        f"control_miss={result.control_miss_rate:.3f}  "
        f"mix={result.ls_mix:.2f}  remote={result.remote_fraction:.2f}"
    )

    table1 = result.table1
    nb = nb_parameter(table1)
    print(
        f"\ncalibrated break-even node count NB = {nb:.2f}"
        f"  (Table 1 assumptions gave 3.125)"
    )

    nodes = [1, 2, 4, 8, 16, 32, 64]
    t_rel = [
        float(time_relative(result.lwp_fraction, n, table1))
        for n in nodes
    ]
    gains = [
        float(performance_gain(result.lwp_fraction, n, table1))
        for n in nodes
    ]
    print()
    print(
        line_plot(
            nodes,
            {"Time_relative": t_rel},
            title=(
                f"calibrated app (%WL={result.lwp_fraction:.0%}) on the "
                "Fig. 7 map"
            ),
            xlabel="PIM nodes",
            ylabel="T_rel",
            logx=True,
            height=12,
        )
    )

    crossing = next(
        (n for n, t in zip(nodes, t_rel) if t <= 1.0), None
    )
    best_gain = max(gains)
    print(
        f"\nrecommendation: deploy >= {crossing} PIM nodes "
        f"(first configuration at or below the control's time); the "
        f"64-node array yields {best_gain:.1f}x over the all-host "
        "control for this application mix."
    )
    print(
        "\nNote how the conclusion survives calibration: the measured"
        "\nworkload lands in the same 'PIM wins decisively' region the"
        "\npaper's assumed parameters predicted — Figure 7's point was"
        "\nthat this holds for *any* %WL once N exceeds NB."
    )


if __name__ == "__main__":
    main()
