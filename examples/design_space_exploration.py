#!/usr/bin/env python3
"""Design-space exploration: sizing a PIM array for a host system.

Scenario: you are architecting a Cascade-style machine.  The vendor can
fab PIM chips whose lightweight nodes run at different speeds (TLcycle)
and whose banks have different access times (TML).  How many PIM nodes
must each configuration ship before PIM-offload is guaranteed to help
(the paper's NB), and what does the %WL=70% data-intensive operating
point gain?

This drives the closed-form model (§3.1.2) over a grid of machine
variants — the kind of sweep the paper's MATLAB model existed for.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro import Table1Params, nb_parameter, performance_gain
from repro.viz import format_table, line_plot


def main() -> None:
    print("PIM design-space exploration (closed-form model)")
    print("=" * 64)

    # -- 1. break-even node count across machine variants ---------------
    rows = []
    for lwp_cycle in (2.0, 5.0, 10.0):          # LWP speed vs host
        for lwp_mem in (10.0, 30.0, 60.0):      # bank access time
            params = Table1Params(
                lwp_cycle_cycles=lwp_cycle, lwp_memory_cycles=lwp_mem
            )
            rows.append(
                {
                    "TLcycle (HWP cycles)": lwp_cycle,
                    "TML (cycles)": lwp_mem,
                    "NB (break-even nodes)": nb_parameter(params),
                    "gain @ %WL=70, N=32": float(
                        performance_gain(0.7, 32, params)
                    ),
                }
            )
    print(format_table(rows))
    print(
        "\nReading: slower nodes / slower banks raise NB — the minimum"
        "\narray size below which PIM-offload can lose to the host."
    )

    # -- 2. sensitivity of NB to the host's cache quality ----------------
    miss_rates = np.linspace(0.02, 0.5, 13)
    nb_curve = [
        nb_parameter(Table1Params(miss_rate=m)) for m in miss_rates
    ]
    print()
    print(
        line_plot(
            list(miss_rates),
            {"NB": nb_curve},
            title="break-even node count vs host cache miss rate",
            xlabel="HWP cache miss rate on high-locality work",
            ylabel="NB",
            height=12,
        )
    )
    print(
        "\nReading: the better the host cache (left side), the more PIM"
        "\nnodes are needed to break even — PIM pays off exactly where"
        "\ncaches stop working, which is the paper's §5.1 conclusion."
    )

    # -- 3. node-count recommendation for a target speedup --------------
    target = 5.0
    fraction = 0.7
    params = Table1Params()
    nodes = np.arange(1, 257)
    gains = performance_gain(fraction, nodes, params)
    feasible = nodes[gains >= target]
    if feasible.size:
        print(
            f"\nTo hit {target:.0f}x end-to-end gain at %WL={fraction:.0%}"
            f" you need >= {int(feasible[0])} PIM nodes"
            f" (gain saturates at {float(gains.max()):.1f}x: the"
            " HWP-side 30% of work becomes the Amdahl limit)."
        )


if __name__ == "__main__":
    main()
