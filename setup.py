"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-use-pep517 --no-build-isolation`` uses this legacy
path; normal online environments can use the PEP 621 metadata in
``pyproject.toml`` directly.
"""

from setuptools import setup

setup()
