#!/usr/bin/env python3
"""Compare fresh benchmark records against committed baselines.

Each ``benchmarks/bench_*.py`` writes a ``BENCH_*.json`` throughput
record; the copies committed at the repository root are the *baselines*
the perf trajectory is tracked against.  CI snapshots those baselines
(before the bench jobs overwrite the files), re-measures, and then runs
this tool, which fails when

* a fresh record says ``"passed": false`` (its own floors failed on the
  runner),
* a floored metric misses the floor carried in the fresh record, or
* a floor was *weakened* relative to the committed baseline — e.g. a
  throughput floor lowered, or the telemetry-overhead ceiling raised —
  which would let a perf regression land silently.

Floors are matched through the explicit :data:`FLOORS` table (metric
name, floor key, direction) per benchmark; suffix-matching heuristics
would false-fail on pairs like ``event_requests_per_sec`` vs
``floor_requests_per_sec``.

Usage::

    python tools/compare_bench.py [RECORD.json ...] --baseline DIR

With no positional records, compares every ``BENCH_*.json`` in the
repository root.  Exits non-zero listing every problem.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import typing as _t

#: (metric, floor key, direction) per benchmark record ``"benchmark"``
#: name.  ``"min"``: metric must be >= floor; ``"max"``: metric must be
#: < floor (a ceiling, e.g. the telemetry overhead percentage).
FLOORS: _t.Dict[str, _t.List[_t.Tuple[str, str, str]]] = {
    "memsys_replay_throughput": [
        ("fast_requests_per_sec", "floor_requests_per_sec", "min"),
        ("refresh_requests_per_sec", "floor_requests_per_sec", "min"),
        (
            "telemetry_overhead_pct",
            "floor_telemetry_overhead_pct",
            "max",
        ),
    ],
    "pimexec_pipeline_throughput": [
        ("all_bank_commands_per_sec", "floor_commands_per_sec", "min"),
        (
            "telemetry_overhead_pct",
            "floor_telemetry_overhead_pct",
            "max",
        ),
    ],
    "nn_transformer_throughput": [
        ("fp16_commands_per_sec", "floor_commands_per_sec", "min"),
        (
            "trace_records_per_sec",
            "floor_trace_records_per_sec",
            "min",
        ),
        (
            "telemetry_overhead_pct",
            "floor_telemetry_overhead_pct",
            "max",
        ),
    ],
}


def compare_record(
    fresh: _t.Mapping[str, _t.Any],
    baseline: _t.Optional[_t.Mapping[str, _t.Any]],
    label: str = "",
) -> _t.Tuple[_t.List[str], _t.List[str]]:
    """Check one record; returns ``(problems, report_lines)``."""
    problems: _t.List[str] = []
    report: _t.List[str] = []
    name = fresh.get("benchmark", "<unnamed>")
    label = label or name
    if not fresh.get("passed", False):
        problems.append(f"{label}: fresh record reports passed=false")
    floors = FLOORS.get(name)
    if floors is None:
        problems.append(
            f"{label}: unknown benchmark {name!r} — add it to "
            "tools/compare_bench.py FLOORS"
        )
        return problems, report
    for metric, floor_key, direction in floors:
        if metric not in fresh:
            problems.append(f"{label}: record lacks metric {metric!r}")
            continue
        if floor_key not in fresh:
            problems.append(
                f"{label}: record lacks floor {floor_key!r}"
            )
            continue
        value = float(fresh[metric])
        floor = float(fresh[floor_key])
        if direction == "min":
            ok = value >= floor
            relation = ">="
        else:
            ok = value < floor
            relation = "<"
        verdict = "ok" if ok else "FLOOR MISS"
        line = (
            f"{label}: {metric} = {value:g} ({relation} {floor:g}) "
            f"{verdict}"
        )
        if baseline is not None and metric in baseline:
            base_value = float(baseline[metric])
            delta = value - base_value
            line += f" [baseline {base_value:g}, {delta:+g}]"
        report.append(line)
        if not ok:
            problems.append(
                f"{label}: {metric} = {value:g} misses floor "
                f"{floor_key} = {floor:g}"
            )
        if baseline is not None and floor_key in baseline:
            base_floor = float(baseline[floor_key])
            weakened = (
                floor < base_floor
                if direction == "min"
                else floor > base_floor
            )
            if weakened:
                problems.append(
                    f"{label}: floor {floor_key} weakened from "
                    f"{base_floor:g} to {floor:g}"
                )
    return problems, report


def _load(path: pathlib.Path) -> _t.Optional[dict]:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "records",
        nargs="*",
        type=pathlib.Path,
        metavar="RECORD",
        help="fresh BENCH_*.json records (default: repository root)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="directory holding the baseline copies (same filenames); "
        "without it only the fresh records' own floors are checked",
    )
    args = parser.parse_args(argv)

    records = list(args.records)
    if not records:
        root = pathlib.Path(__file__).resolve().parent.parent
        records = sorted(root.glob("BENCH_*.json"))
    if not records:
        print("no BENCH_*.json records found", file=sys.stderr)
        return 2

    problems: _t.List[str] = []
    for path in records:
        fresh = _load(path)
        if fresh is None:
            problems.append(f"{path}: unreadable record")
            continue
        baseline = None
        if args.baseline is not None:
            baseline_path = args.baseline / path.name
            baseline = _load(baseline_path)
            if baseline is None:
                problems.append(
                    f"{path.name}: no baseline at {baseline_path}"
                )
        file_problems, report = compare_record(
            fresh, baseline, label=path.name
        )
        problems.extend(file_problems)
        for line in report:
            print(line)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"bench records OK: {len(records)} compared")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
