#!/usr/bin/env python3
"""Compare fresh benchmark records against committed baselines.

Each ``benchmarks/bench_*.py`` writes a ``BENCH_*.json`` throughput
record; the copies committed at the repository root are the *baselines*
the perf trajectory is tracked against.  CI snapshots those baselines
(before the bench jobs overwrite the files), re-measures, and then runs
this tool, which fails when

* a fresh record says ``"passed": false`` (its own floors failed on the
  runner),
* a floored metric misses the floor carried in the fresh record, or
* a floor was *weakened* relative to the committed baseline — e.g. a
  throughput floor lowered, or the telemetry-overhead ceiling raised —
  which would let a perf regression land silently.

Floors are matched through the explicit :data:`FLOORS` table (metric
name, floor key, direction, and an optional *gate key*) per benchmark;
suffix-matching heuristics would false-fail on pairs like
``event_requests_per_sec`` vs ``floor_requests_per_sec``.  A gated
floor is only enforced when the record's gate field is true — e.g. the
farm speedup floor is gated on ``floor_enforced`` (the benchmark sets
it false on runners with too few cores to parallelize at all).
Weakening detection stays active even when the gate is off: a lowered
floor value is suspicious regardless of the runner.

``--remeasure`` grants every record with a *floor miss* (including
``passed=false``) exactly one re-measure: the matching
``benchmarks/bench_<stem>.py`` is re-run with ``--json`` onto the same
record file and the comparison repeats on the fresh numbers.  Perf
floors are noisy on shared runners; one bounded retry absorbs a
scheduling hiccup without letting a real regression pass (a second
miss still fails, and weakened floors are never retried).

Records that carry their own noise estimate (the
``telemetry_overhead_spread_pct`` field written by the benches' paired
off/on overhead measurement) get a gentler verdict: an overhead miss
smaller than the spread is a **NOISY MISS** — a re-measure signal, and
after the bounded retry a persistent within-spread miss is tolerated
with a warning rather than failing the run.  A miss beyond the spread
fails as before.

``--history FILE`` appends every compared run's floored metrics to a
JSONL trajectory file and prints PR-over-PR deltas against the
previous entry, so the perf record is tracked across PRs, not just
against the committed baseline.

Usage::

    python tools/compare_bench.py [RECORD.json ...] --baseline DIR

With no positional records, compares every ``BENCH_*.json`` in the
repository root.  Exits non-zero listing every problem.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import typing as _t

#: (metric, floor key, direction[, gate key]) per benchmark record
#: ``"benchmark"`` name.  ``"min"``: metric must be >= floor; ``"max"``:
#: metric must be < floor (a ceiling, e.g. the telemetry overhead
#: percentage).  A 4th element names a boolean record field gating
#: enforcement: when the record carries it false, a miss of this floor
#: is reported but not fatal (weakening detection still applies).
FLOORS: _t.Dict[str, _t.List[_t.Tuple[str, ...]]] = {
    "memsys_replay_throughput": [
        ("fast_requests_per_sec", "floor_requests_per_sec", "min"),
        ("refresh_requests_per_sec", "floor_requests_per_sec", "min"),
        (
            "telemetry_overhead_pct",
            "floor_telemetry_overhead_pct",
            "max",
        ),
    ],
    "pimexec_pipeline_throughput": [
        ("all_bank_commands_per_sec", "floor_commands_per_sec", "min"),
        (
            "telemetry_overhead_pct",
            "floor_telemetry_overhead_pct",
            "max",
        ),
    ],
    "nn_transformer_throughput": [
        ("fp16_commands_per_sec", "floor_commands_per_sec", "min"),
        (
            "trace_records_per_sec",
            "floor_trace_records_per_sec",
            "min",
        ),
        (
            "telemetry_overhead_pct",
            "floor_telemetry_overhead_pct",
            "max",
        ),
    ],
    "farm_replay_speedup": [
        # only enforced on runners with enough cores to parallelize
        ("speedup", "floor_speedup", "min", "floor_enforced"),
    ],
}

#: Metrics whose record carries its own run-to-run noise estimate.
#: When such a metric misses its floor by less than the spread, the
#: miss is a *noisy miss*: the run's own pairwise variation swamps the
#: margin, so the verdict is "re-measure", and a noisy miss that
#: persists after the bounded ``--remeasure`` retry is downgraded to a
#: warning instead of failing the run.  A miss beyond the spread is a
#: real regression and fails as before.
SPREAD_KEYS: _t.Dict[str, str] = {
    "telemetry_overhead_pct": "telemetry_overhead_spread_pct",
}

#: Non-numeric provenance fields carried into the JSONL history next to
#: the floored metrics: which execution-unit tier and replay engine
#: produced each run's numbers.  A throughput trajectory is only
#: comparable across PRs when the tier that produced it is on record —
#: the vectorized unit tier and the AB-lockstep fast replay engine are
#: each worth orders of magnitude on the pimexec pipeline.
TIER_KEYS: _t.Tuple[str, ...] = ("unit_mode", "replay_engine")

#: Energy-efficiency fields carried into the JSONL history next to the
#: floored metrics, so pJ/bit and perf-per-watt regressions show up as
#: PR-over-PR deltas even though they have no floor (energy totals are
#: derived, deterministic quantities — a delta here means the model or
#: the command stream changed, not the runner).
ENERGY_KEYS: _t.Tuple[str, ...] = (
    "energy_pj_per_bit",
    "energy_total_pj",
    "energy_mean_power_w",
    "energy_requests_per_s_per_w",
    "energy_commands_per_s_per_w",
    "energy_tokens_per_s_per_w",
)


def compare_record(
    fresh: _t.Mapping[str, _t.Any],
    baseline: _t.Optional[_t.Mapping[str, _t.Any]],
    label: str = "",
) -> _t.Tuple[_t.List[str], _t.List[str]]:
    """Check one record; returns ``(problems, report_lines)``."""
    problems: _t.List[str] = []
    report: _t.List[str] = []
    name = fresh.get("benchmark", "<unnamed>")
    label = label or name
    if not fresh.get("passed", False):
        problems.append(f"{label}: fresh record reports passed=false")
    floors = FLOORS.get(name)
    if floors is None:
        problems.append(
            f"{label}: unknown benchmark {name!r} — add it to "
            "tools/compare_bench.py FLOORS"
        )
        return problems, report
    for entry in floors:
        metric, floor_key, direction = entry[:3]
        gate_key = entry[3] if len(entry) > 3 else None
        if metric not in fresh:
            problems.append(f"{label}: record lacks metric {metric!r}")
            continue
        if floor_key not in fresh:
            problems.append(
                f"{label}: record lacks floor {floor_key!r}"
            )
            continue
        enforced = gate_key is None or bool(fresh.get(gate_key))
        value = float(fresh[metric])
        floor = float(fresh[floor_key])
        if direction == "min":
            ok = value >= floor
            relation = ">="
        else:
            ok = value < floor
            relation = "<"
        spread = 0.0
        spread_key = SPREAD_KEYS.get(metric)
        if spread_key is not None and spread_key in fresh:
            spread = abs(float(fresh[spread_key]))
        noisy = not ok and spread > 0 and (
            value - spread < floor
            if direction == "max"
            else value + spread >= floor
        )
        if ok:
            verdict = "ok"
        elif not enforced:
            verdict = f"floor not enforced ({gate_key}=false)"
        elif noisy:
            verdict = "NOISY MISS (within spread; re-measure)"
        else:
            verdict = "FLOOR MISS"
        line = (
            f"{label}: {metric} = {value:g} ({relation} {floor:g}) "
            f"{verdict}"
        )
        if baseline is not None and metric in baseline:
            base_value = float(baseline[metric])
            delta = value - base_value
            line += f" [baseline {base_value:g}, {delta:+g}]"
        report.append(line)
        if not ok and enforced:
            problem = (
                f"{label}: {metric} = {value:g} misses floor "
                f"{floor_key} = {floor:g}"
            )
            if noisy:
                problem += f" (within spread {spread:g} — re-measure)"
            problems.append(problem)
        if baseline is not None and floor_key in baseline:
            base_floor = float(baseline[floor_key])
            weakened = (
                floor < base_floor
                if direction == "min"
                else floor > base_floor
            )
            if weakened:
                problems.append(
                    f"{label}: floor {floor_key} weakened from "
                    f"{base_floor:g} to {floor:g}"
                )
    return problems, report


def _load(path: pathlib.Path) -> _t.Optional[dict]:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _floor_misses(problems: _t.Sequence[str]) -> _t.List[str]:
    """The subset of problems one re-measure could plausibly clear.

    Floor misses and a self-reported ``passed=false`` are measurement
    outcomes — rerunning the benchmark can change them.  Weakened
    floors and structural problems (missing metrics, unknown
    benchmarks, unreadable records) are properties of the committed
    files; a retry cannot fix those and must not mask them.
    """
    return [
        p
        for p in problems
        if "misses floor" in p or "passed=false" in p
    ]


def _remeasure(record_path: pathlib.Path) -> bool:
    """Re-run the benchmark behind ``BENCH_<stem>.json`` once.

    Maps the record back to ``benchmarks/bench_<stem>.py`` and invokes
    it with ``--json`` onto the same record file.  Returns ``True`` if
    the script ran (regardless of its own exit code — the caller
    re-compares the fresh record either way).
    """
    import subprocess

    stem = record_path.stem
    if stem.startswith("BENCH_"):
        stem = stem[len("BENCH_"):]
    root = pathlib.Path(__file__).resolve().parent.parent
    script = root / "benchmarks" / f"bench_{stem}.py"
    if not script.exists():
        print(
            f"{record_path.name}: cannot re-measure, no {script.name}",
            file=sys.stderr,
        )
        return False
    print(f"{record_path.name}: floor miss — re-measuring once...")
    subprocess.run(
        [sys.executable, str(script), "--json", str(record_path)],
        cwd=root,
        env=dict(os.environ, PYTHONPATH=str(root / "src")),
        check=False,
    )
    return True


def _history_entry(
    records: _t.Mapping[str, _t.Mapping[str, _t.Any]],
) -> dict:
    """One JSONL history line: the floored keys of every record."""
    import time

    kept: _t.Dict[str, _t.Dict[str, _t.Any]] = {}
    for name, record in records.items():
        keys = {"passed"}
        keys.update(TIER_KEYS)
        keys.update(ENERGY_KEYS)
        for entry in FLOORS.get(name, []):
            keys.update(entry[:2])
            spread_key = SPREAD_KEYS.get(entry[0])
            if spread_key is not None:
                keys.add(spread_key)
        kept[name] = {
            key: record[key] for key in sorted(keys) if key in record
        }
    return {"t": int(time.time()), "records": kept}


def _update_history(
    path: pathlib.Path,
    records: _t.Mapping[str, _t.Mapping[str, _t.Any]],
) -> _t.List[str]:
    """Append this run to the JSONL history; return PR-over-PR deltas.

    Reads the last entry already in ``path`` (the previous PR's run),
    prints a delta line for every floored metric and floor key, then
    appends the current run.  A missing or empty history file just
    means "first recorded run".  Re-running the comparison on the same
    commit produces identical kept metrics; such a run updates nothing
    — the entry is only appended when its ``records`` differ from the
    previous line, so the trajectory has one line per measured change
    rather than one per CI invocation.
    """
    previous: _t.Optional[dict] = None
    if path.exists():
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                previous = json.loads(line)
            except json.JSONDecodeError:
                continue
    entry = _history_entry(records)
    lines: _t.List[str] = []
    prior = (previous or {}).get("records", {})
    for name, kept in sorted(entry["records"].items()):
        before = prior.get(name)
        for key, value in kept.items():
            if key == "passed" or not isinstance(
                value, (int, float)
            ):
                continue
            if not isinstance(before, dict) or not isinstance(
                before.get(key), (int, float)
            ):
                lines.append(f"history: {name}.{key} = {value:g} (new)")
                continue
            prev = float(before[key])
            lines.append(
                f"history: {name}.{key} = {value:g} "
                f"[previous {prev:g}, {float(value) - prev:+g}]"
            )
    if entry["records"] == prior and previous is not None:
        lines.append(
            "history: unchanged from previous entry — not re-appended"
        )
        return lines
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(entry) + "\n")
    return lines


def main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "records",
        nargs="*",
        type=pathlib.Path,
        metavar="RECORD",
        help="fresh BENCH_*.json records (default: repository root)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="directory holding the baseline copies (same filenames); "
        "without it only the fresh records' own floors are checked",
    )
    parser.add_argument(
        "--remeasure",
        action="store_true",
        help="on a floor miss, re-run the matching benchmarks/"
        "bench_*.py once and re-compare (weakened floors and "
        "structural problems are never retried)",
    )
    parser.add_argument(
        "--history",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="append this run's floored metrics to FILE (JSONL) and "
        "print PR-over-PR deltas against the previous entry",
    )
    args = parser.parse_args(argv)

    records = list(args.records)
    if not records:
        root = pathlib.Path(__file__).resolve().parent.parent
        records = sorted(root.glob("BENCH_*.json"))
    if not records:
        print("no BENCH_*.json records found", file=sys.stderr)
        return 2

    problems: _t.List[str] = []
    compared: _t.Dict[str, dict] = {}
    for path in records:
        fresh = _load(path)
        if fresh is None:
            problems.append(f"{path}: unreadable record")
            continue
        baseline = None
        if args.baseline is not None:
            baseline_path = args.baseline / path.name
            baseline = _load(baseline_path)
            if baseline is None:
                problems.append(
                    f"{path.name}: no baseline at {baseline_path}"
                )
        file_problems, report = compare_record(
            fresh, baseline, label=path.name
        )
        if (
            args.remeasure
            and _floor_misses(file_problems)
            and _remeasure(path)
        ):
            fresh = _load(path)
            if fresh is None:
                file_problems = [
                    f"{path}: unreadable record after re-measure"
                ]
                report = []
            else:
                retried, report = compare_record(
                    fresh, baseline, label=path.name
                )
                # a retry only clears measurement outcomes; keep any
                # structural/weakening problems from either pass
                structural = [
                    p
                    for p in file_problems
                    if p not in _floor_misses(file_problems)
                ]
                file_problems = retried + [
                    p for p in structural if p not in retried
                ]
            # the bounded retry already ran: a miss still inside the
            # record's own noise spread is noise, not a regression —
            # tolerate it with a warning instead of failing the run
            tolerated = [
                p for p in file_problems if "within spread" in p
            ]
            for warning in tolerated:
                print(
                    f"warning (noisy, tolerated after re-measure): "
                    f"{warning}",
                    file=sys.stderr,
                )
            file_problems = [
                p for p in file_problems if "within spread" not in p
            ]
        problems.extend(file_problems)
        if fresh is not None:
            compared[fresh.get("benchmark", path.name)] = fresh
        for line in report:
            print(line)
    if args.history is not None:
        for line in _update_history(args.history, compared):
            print(line)
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"bench records OK: {len(records)} compared")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
