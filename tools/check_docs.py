#!/usr/bin/env python3
"""Link-check the markdown documentation tree.

Scans ``README.md`` and ``docs/**/*.md`` for inline markdown links and
verifies that

* relative link targets exist on disk (files or directories), and
* ``#anchor`` fragments — same-file or cross-file — match a heading in
  the target document (GitHub-style slugs),

so documented paths can't rot silently.  External (``http(s)://``,
``mailto:``) targets are not fetched.  Exits non-zero listing every
broken link.  CI runs this next to the examples smoke tests; the tier-1
suite runs it too (``tests/test_docs.py``), so a broken link fails
locally first.

Usage::

    python tools/check_docs.py [REPO_ROOT]
"""

from __future__ import annotations

import pathlib
import re
import sys
import typing as _t

#: Inline markdown link: [text](target) — target without surrounding
#: whitespace; images (![alt](target)) match too via the optional bang.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```.*?```", re.DOTALL)
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slugify(heading: str) -> str:
    """GitHub-style heading slug: lowercase, punctuation out, dashes."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(markdown: str) -> _t.Set[str]:
    return {
        _slugify(match.group(1))
        for match in _HEADING.finditer(markdown)
    }


def doc_files(root: pathlib.Path) -> _t.List[pathlib.Path]:
    """The documents under contract: README plus the docs/ tree."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").rglob("*.md")))
    return [path for path in files if path.exists()]


def check_file(
    path: pathlib.Path, root: pathlib.Path
) -> _t.List[str]:
    """Return human-readable problems for one markdown file."""
    problems: _t.List[str] = []
    text = _FENCE.sub("", path.read_text())
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}: broken link "
                    f"{target!r} (no such file {base!r})"
                )
                continue
        else:
            resolved = path
        if fragment:
            if resolved.is_dir() or resolved.suffix != ".md":
                continue  # anchors only checked into markdown
            if fragment not in _anchors(resolved.read_text()):
                problems.append(
                    f"{path.relative_to(root)}: broken anchor "
                    f"{target!r} (no heading slug {fragment!r} in "
                    f"{resolved.relative_to(root)})"
                )
    return problems


def check_tree(root: pathlib.Path) -> _t.List[str]:
    """Check every documentation file; returns all problems."""
    files = doc_files(root)
    problems = []
    if not files:
        problems.append(f"no documentation files found under {root}")
    if not (root / "docs").is_dir():
        problems.append("docs/ directory is missing")
    for path in files:
        problems.extend(check_file(path, root))
    return problems


def main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    root = (
        pathlib.Path(argv[0])
        if argv
        else pathlib.Path(__file__).resolve().parent.parent
    )
    problems = check_tree(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = len(doc_files(root))
    if not problems:
        print(f"docs OK: {checked} file(s) link-checked")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
